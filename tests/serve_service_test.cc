// The service tier: TenantRegistry + TenantInstance. Multi-tenant isolation
// (two different programs, interleaved updates and queries, epochs and
// marginals never cross), admission control (queue saturation sheds one
// tenant without touching the other's serving path), writer lifecycle
// (stop/drain, failed initialization), and reader pins surviving tenant
// shutdown. The saturation drill also runs under the TSan CI job.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/comm/messages.h"
#include "serve/service/registry.h"
#include "serve/service/tenant.h"
#include "util/bounded_queue.h"
#include "util/thread_pool.h"

namespace deepdive::serve::service {
namespace {

constexpr char kSpouseProgram[] = R"(
relation Person(sent: int, mention: int).
query relation HasSpouse(m1: int, m2: int).
evidence HasSpouseLabel(m1: int, m2: int, l: bool) for HasSpouse.
rule CAND: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
factor PRIOR: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2
  weight = 0.5 semantics = logical.
)";

constexpr char kVoteProgram[] = R"(
relation Endorses(src: int, dst: int).
query relation Trusted(p: int).
evidence TrustedLabel(p: int, l: bool) for Trusted.
rule CAND: Trusted(p) :- Endorses(s, p).
factor FE: Trusted(p) :- Endorses(s, p) weight = w(s) semantics = ratio.
)";

comm::TenantConfig FastConfig() {
  comm::TenantConfig config;
  config.epochs = 5;
  return config;
}

std::unique_ptr<TenantInstance> MakeSpouseTenant(
    comm::TenantConfig config = FastConfig()) {
  std::vector<comm::DataPayload> data;
  data.push_back({"Person", "1\t10\n1\t11\n"});
  data.push_back({"HasSpouseLabel", "10\t11\ttrue\n"});
  return std::make_unique<TenantInstance>("spouse", kSpouseProgram, config,
                                          std::move(data));
}

std::unique_ptr<TenantInstance> MakeVoteTenant(
    comm::TenantConfig config = FastConfig()) {
  std::vector<comm::DataPayload> data;
  data.push_back({"Endorses", "1\t100\n2\t100\n"});
  data.push_back({"TrustedLabel", "100\ttrue\n"});
  return std::make_unique<TenantInstance>("vote", kVoteProgram, config,
                                          std::move(data));
}

// ---------------------------------------------------------------------------
// Multi-tenant isolation.

TEST(TenantIsolationTest, TwoProgramsServeIndependently) {
  auto spouse = MakeSpouseTenant();
  auto vote = MakeVoteTenant();
  ASSERT_TRUE(spouse->WaitReady().ok());
  ASSERT_TRUE(vote->WaitReady().ok());

  // Each tenant's view holds exactly its own schema — no cross-pollination.
  const auto spouse_view = spouse->deepdive()->Query();
  const auto vote_view = vote->deepdive()->Query();
  EXPECT_EQ(spouse_view->epoch, 1u);
  EXPECT_EQ(vote_view->epoch, 1u);
  EXPECT_TRUE(spouse_view->relations.count("HasSpouse"));
  EXPECT_FALSE(spouse_view->relations.count("Trusted"));
  EXPECT_TRUE(vote_view->relations.count("Trusted"));
  EXPECT_FALSE(vote_view->relations.count("HasSpouse"));

  // An update to one tenant advances only that tenant's epoch; the other's
  // published view is untouched (same epoch, same content hash).
  const uint64_t vote_hash_before = vote->deepdive()->Query()->content_hash;
  comm::UpdateRequest grow;
  grow.inserts.push_back({"Person", "2\t20\n2\t21\n"});
  auto applied = spouse->SubmitUpdate(std::move(grow));
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->epoch, 2u);
  EXPECT_EQ(spouse->deepdive()->Query()->epoch, 2u);
  const auto vote_after = vote->deepdive()->Query();
  EXPECT_EQ(vote_after->epoch, 1u);
  EXPECT_EQ(vote_after->content_hash, vote_hash_before);

  spouse->Stop();
  vote->Stop();
}

TEST(TenantIsolationTest, InterleavedUpdatesKeepPerTenantEpochsMonotone) {
  auto spouse = MakeSpouseTenant();
  auto vote = MakeVoteTenant();
  ASSERT_TRUE(spouse->WaitReady().ok());
  ASSERT_TRUE(vote->WaitReady().ok());

  // Interleave: spouse, vote, spouse, vote. Each tenant sees only its own
  // sequence (2, 3), never the other's.
  for (uint64_t round = 0; round < 2; ++round) {
    comm::UpdateRequest grow_spouse;
    grow_spouse.inserts.push_back(
        {"Person", std::to_string(round + 5) + "\t" +
                       std::to_string(50 + round) + "\n" +
                       std::to_string(round + 5) + "\t" +
                       std::to_string(60 + round) + "\n"});
    auto spouse_applied = spouse->SubmitUpdate(std::move(grow_spouse));
    ASSERT_TRUE(spouse_applied.ok()) << spouse_applied.status().ToString();
    EXPECT_EQ(spouse_applied->epoch, round + 2);

    comm::UpdateRequest grow_vote;
    grow_vote.inserts.push_back(
        {"Endorses", "3\t" + std::to_string(200 + round) + "\n"});
    auto vote_applied = vote->SubmitUpdate(std::move(grow_vote));
    ASSERT_TRUE(vote_applied.ok()) << vote_applied.status().ToString();
    EXPECT_EQ(vote_applied->epoch, round + 2);

    // Queries in between ride the lock-free pin path and see exactly the
    // epoch their tenant has published.
    EXPECT_EQ(spouse->deepdive()->Query()->epoch, round + 2);
    EXPECT_EQ(vote->deepdive()->Query()->epoch, round + 2);
  }
  EXPECT_EQ(spouse->GetStatus().updates_applied, 2u);
  EXPECT_EQ(vote->GetStatus().updates_applied, 2u);
}

// ---------------------------------------------------------------------------
// Admission control: saturating one tenant's queue must not touch the other.

TEST(TenantIsolationTest, QueueSaturationShedsWithoutAffectingOtherTenant) {
  comm::TenantConfig saturable = FastConfig();
  saturable.queue_capacity = 4;
  saturable.shed_watermark = 2;
  saturable.retry_after_ms = 77;
  auto spouse = MakeSpouseTenant(saturable);
  auto vote = MakeVoteTenant();
  ASSERT_TRUE(spouse->WaitReady().ok());
  ASSERT_TRUE(vote->WaitReady().ok());

  // Deterministic stall: the writer signals `entered` at the top of each
  // update job and then blocks on `release` — rendezvous channels, no sleeps.
  BoundedQueue<int> entered(8);
  BoundedQueue<int> release(8);
  spouse->SetPreUpdateHookForTest([&entered, &release] {
    entered.Push(0);
    release.Pop();
  });

  auto make_update = [](int i) {
    comm::UpdateRequest update;
    update.label = "stall#" + std::to_string(i);
    update.inserts.push_back(
        {"Person", std::to_string(80 + i) + "\t" + std::to_string(90 + i) +
                       "\n" + std::to_string(80 + i) + "\t" +
                       std::to_string(95 + i) + "\n"});
    return update;
  };

  ThreadPool submitters(3, /*inline_when_single=*/false);
  // U1 is popped by the writer, which then stalls inside the hook...
  submitters.Submit([&spouse, &make_update] {
    auto result = spouse->SubmitUpdate(make_update(1));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  ASSERT_TRUE(entered.Pop().has_value());  // ...confirmed: queue is empty.
  // U2/U3 fill the queue up to the shed watermark (depth 2).
  for (int i = 2; i <= 3; ++i) {
    submitters.Submit([&spouse, &make_update, i] {
      auto result = spouse->SubmitUpdate(make_update(i));
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    });
  }
  while (spouse->GetStatus().queue_depth < 2) {
    // The two submitters above only block on their futures after a
    // successful TryPush; depth reaches 2 promptly.
    std::this_thread::yield();
  }

  // U4 must shed: structured Unavailable, counted, and non-blocking.
  auto shed = spouse->SubmitUpdate(make_update(4));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(spouse->GetStatus().updates_shed, 1u);
  EXPECT_EQ(spouse->config().retry_after_ms, 77u);

  // The other tenant's serving path is untouched while spouse is saturated:
  // queries pin views and an update applies, start to finish.
  EXPECT_EQ(vote->deepdive()->Query()->epoch, 1u);
  comm::UpdateRequest vote_update;
  vote_update.inserts.push_back({"Endorses", "4\t300\n"});
  auto vote_applied = vote->SubmitUpdate(std::move(vote_update));
  ASSERT_TRUE(vote_applied.ok()) << vote_applied.status().ToString();
  EXPECT_EQ(vote_applied->epoch, 2u);

  // Unstall: release U1, then U2 and U3 as the writer reaches them.
  for (int i = 0; i < 3; ++i) release.Push(0);
  submitters.Wait();
  while (entered.TryPop().has_value()) {
  }
  EXPECT_EQ(spouse->GetStatus().updates_applied, 3u);
  EXPECT_EQ(spouse->deepdive()->Query()->epoch, 4u);

  spouse->SetPreUpdateHookForTest(nullptr);
  spouse->Stop();
  vote->Stop();
}

// ---------------------------------------------------------------------------
// Lifecycle.

TEST(TenantInstanceTest, StopRejectsSubsequentWorkButKeepsPinsAlive) {
  auto spouse = MakeSpouseTenant();
  ASSERT_TRUE(spouse->WaitReady().ok());
  // A reader grabs the engine before shutdown...
  std::shared_ptr<const core::DeepDive> dd = spouse->deepdive();
  const auto pinned = dd->Query();
  const uint64_t pinned_epoch = pinned->epoch;

  spouse->Stop();
  EXPECT_EQ(spouse->deepdive(), nullptr);
  EXPECT_FALSE(spouse->GetStatus().ready);

  auto rejected = spouse->SubmitUpdate(comm::UpdateRequest{});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(spouse->SaveGraph("/tmp/never.bin").ok());
  EXPECT_FALSE(spouse->Drain().ok());

  // ...and the pin outlives Stop(): the view stays fully readable.
  EXPECT_EQ(pinned->epoch, pinned_epoch);
  EXPECT_EQ(pinned->Fingerprint(), pinned->content_hash);
  EXPECT_FALSE(pinned->relations.empty());
}

TEST(TenantInstanceTest, FailedProgramReportsAndRejectsFast) {
  TenantInstance broken("broken", "this is not a deepdive program", FastConfig(),
                        {});
  const Status ready = broken.WaitReady();
  ASSERT_FALSE(ready.ok());
  EXPECT_TRUE(broken.GetStatus().failed);
  EXPECT_EQ(broken.deepdive(), nullptr);
  EXPECT_FALSE(broken.InitInfo().ok());

  // Jobs against a failed tenant fail fast instead of hanging.
  auto rejected = broken.SubmitUpdate(comm::UpdateRequest{});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  broken.Stop();
}

TEST(TenantInstanceTest, BadBaseDataFailsInitialization) {
  std::vector<comm::DataPayload> data;
  data.push_back({"Person", "not-a-number\toops\n"});
  TenantInstance bad("bad-data", kSpouseProgram, FastConfig(), std::move(data));
  const Status ready = bad.WaitReady();
  ASSERT_FALSE(ready.ok());
  // The parse error names relation and line for operators.
  EXPECT_NE(ready.message().find("Person:1"), std::string::npos)
      << ready.ToString();
  bad.Stop();
}

TEST(TenantInstanceTest, DrainReportsMaterializationState) {
  comm::TenantConfig config = FastConfig();
  config.async_materialize = true;
  auto spouse = MakeSpouseTenant(config);
  ASSERT_TRUE(spouse->WaitReady().ok());
  comm::UpdateRequest grow;
  grow.inserts.push_back({"Person", "3\t30\n3\t31\n"});
  ASSERT_TRUE(spouse->SubmitUpdate(std::move(grow)).ok());
  auto drained = spouse->Drain();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_GT(drained->samples_collected, 0u);
  spouse->Stop();
}

// ---------------------------------------------------------------------------
// Registry.

TEST(TenantRegistryTest, CreateFindAndDuplicateRejection) {
  TenantRegistry registry;
  comm::CreateTenantRequest create;
  create.name = "kb";
  create.program = kSpouseProgram;
  create.config = FastConfig();
  create.data.push_back({"Person", "1\t10\n1\t11\n"});
  auto tenant = registry.CreateTenant(create);
  ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
  ASSERT_TRUE((*tenant)->WaitReady().ok());
  EXPECT_EQ(registry.Find("kb"), *tenant);
  EXPECT_EQ(registry.Find("nope"), nullptr);

  auto duplicate = registry.CreateTenant(create);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);

  comm::CreateTenantRequest nameless;
  nameless.program = kSpouseProgram;
  EXPECT_EQ(registry.CreateTenant(nameless).status().code(),
            StatusCode::kInvalidArgument);

  create.name = "kb2";
  ASSERT_TRUE(registry.CreateTenant(create).ok());
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"kb", "kb2"}));
  registry.StopAll();
  EXPECT_EQ(registry.Find("kb")->deepdive(), nullptr);
}

}  // namespace
}  // namespace deepdive::serve::service
