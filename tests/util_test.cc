#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bitvector.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace deepdive {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition), "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DD_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(UseHalf(7, &out).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

// Regression: seed derivation by arithmetic (`seed + k`) makes the stream
// for (seed, stream k) collide with the one for (seed+1, stream k-1) — two
// runs configured with adjacent base seeds silently share randomness.
// MixSeed keying must keep every (seed, stream) pair distinct.
TEST(RngTest, MixSeedStreamsDoNotCollideAcrossAdjacentSeeds) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    for (uint64_t stream = 1; stream < 16; ++stream) {
      EXPECT_NE(Rng::MixSeed(seed, stream), Rng::MixSeed(seed + 1, stream - 1))
          << "seed=" << seed << " stream=" << stream;
      EXPECT_NE(Rng::MixSeed(seed, stream), seed + stream);
    }
  }
}

TEST(RngTest, MixSeedSubstreamsDistinct) {
  EXPECT_NE(Rng::MixSeed(7, 1, 2), Rng::MixSeed(7, 2, 1));
  EXPECT_NE(Rng::MixSeed(7, 1, 2), Rng::MixSeed(7, 1, 3));
  Rng a(Rng::MixSeed(7, 1)), b(Rng::MixSeed(7, 2));
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformIntIsUnbiasedEnough) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<uint32_t> perm(20);
  for (uint32_t i = 0; i < 20; ++i) perm[i] = i;
  rng.Shuffle(&perm);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 20u);
}

TEST(BitVectorTest, SetGetAcrossWordBoundaries) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  bits.Set(0, true);
  bits.Set(63, true);
  bits.Set(64, true);
  bits.Set(129, true);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(129));
  EXPECT_FALSE(bits.Get(1));
  EXPECT_EQ(bits.PopCount(), 4u);
}

TEST(BitVectorTest, InitialValueTrue) {
  BitVector bits(70, true);
  EXPECT_EQ(bits.PopCount(), 70u);
}

TEST(BitVectorTest, ResizePreservesAndFills) {
  BitVector bits(10);
  bits.Set(3, true);
  bits.Resize(100, true);
  EXPECT_TRUE(bits.Get(3));
  EXPECT_FALSE(bits.Get(4));
  EXPECT_TRUE(bits.Get(50));
  EXPECT_EQ(bits.PopCount(), 1u + 90u);
}

TEST(BitVectorTest, HammingDistance) {
  BitVector a(80), b(80);
  a.Set(5, true);
  a.Set(70, true);
  b.Set(70, true);
  b.Set(71, true);
  EXPECT_EQ(a.HammingDistance(b), 2u);
  EXPECT_EQ(a.HammingDistance(a), 0u);
}

TEST(BitVectorTest, EqualityAndByteSize) {
  BitVector a(65), b(65);
  EXPECT_EQ(a, b);
  a.Set(64, true);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.ByteSize(), 16u);
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitString("", ',').empty());
  EXPECT_EQ(SplitString(",,", ',').size(), 0u);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("PERSON_12", "PERSON_"));
  EXPECT_FALSE(StartsWith("PER", "PERSON_"));
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(HashTest, MixAvalanches) {
  EXPECT_NE(HashMix(1), HashMix(2));
  EXPECT_NE(HashString("a"), HashString("b"));
  EXPECT_EQ(HashString("abc"), HashString("abc"));
}

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2), HashCombine(HashCombine(0, 2), 1));
}

}  // namespace
}  // namespace deepdive
