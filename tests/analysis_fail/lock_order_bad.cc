// Negative fixture for the lock-order checker: two functions acquire the
// same pair of mutexes in opposite orders — the classic AB/BA deadlock.
// ctest runs the analyzer on this file alone and requires failure
// (WILL_FAIL). Not compiled.

namespace deepdive {

class Ledger {
 public:
  void Credit() {
    MutexLock accounts(accounts_mu_);
    MutexLock audit(audit_mu_);
  }
  void Audit() {
    MutexLock audit(audit_mu_);
    MutexLock accounts(accounts_mu_);
  }

 private:
  Mutex accounts_mu_;
  Mutex audit_mu_;
};

}  // namespace deepdive
