// Negative fixture for the untrusted-input checker (run with --scope-all):
// a decoded length reaches an allocation and a loop bound with no bounds
// check and no sticky-error conjunct. ctest requires the analyzer to fail
// here (WILL_FAIL). Not compiled.

namespace deepdive::comm {

struct BadDecoder {
  void Decode(WireReader& r, std::vector<int>* out, std::string* s,
              const std::string& buf) {
    uint32_t n = r.GetU32();
    out->resize(n);  // attacker-sized allocation
    for (uint32_t i = 0; i < n; ++i) {  // no r.ok() conjunct
      out->push_back(r.GetU32());
    }
    uint32_t len = r.GetU32();
    *s = buf.substr(0, len);  // unchecked length
  }
};

}  // namespace deepdive::comm
