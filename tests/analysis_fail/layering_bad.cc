// Negative fixture for the layering-DAG checker: run with
// --assume-module serve/comm, this file reaches the engine's writer surface
// from the codec tier — an edge absent from MODULE_DAG. ctest marks the run
// WILL_FAIL. Not compiled.
#include "core/deepdive.h"
#include "incremental/engine.h"

void handle() {}
