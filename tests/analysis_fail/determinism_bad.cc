// Negative fixture for the determinism checker: ctest runs the analyzer on
// this file alone and requires it to FAIL (WILL_FAIL) — proving the gate
// still bites. Not compiled; excluded from the normal full-tree scan (the
// gate scans src/ only).
#include <unordered_map>

namespace deepdive::grounding {

struct IncrementalGrounder {
  std::unordered_map<int, double> pending_;

  // Seed-scoped entry point: emission order leaks hash-table layout.
  void GroundAll() {
    for (const auto& [var, weight] : pending_) {
      Emit(var, weight);
    }
    Rng rng(seed_ + worker_);  // hand-rolled stream derivation
  }

  void Emit(int, double);
  unsigned long seed_ = 0;
  unsigned long worker_ = 0;
};

}  // namespace deepdive::grounding
