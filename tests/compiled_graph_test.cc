// CompiledGraph: flat CSR compilation, compaction semantics, binary snapshot
// round-trips (mmap and buffered), corruption rejection, and — the load-bearing
// contract — bit-identical inference and learning against the mutable
// FactorGraph path at num_threads = 1.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "factor/graph_io.h"
#include "incremental/snapshot.h"
#include "inference/compiled_inference.h"
#include "inference/exact.h"
#include "inference/gibbs.h"
#include "inference/learner.h"
#include "inference/replicated_gibbs.h"
#include "util/random.h"

namespace deepdive {
namespace {

using factor::ClauseId;
using factor::CompiledGraph;
using factor::FactorGraph;
using factor::GroupId;
using factor::Semantics;
using factor::VarId;
using factor::WeightId;

// Mixed workload: evidence, tied weights, every semantics, empty clauses
// (priors), plus DRed-style retractions of clauses and whole groups.
FactorGraph MixedGraph(uint64_t seed) {
  FactorGraph g;
  Rng rng(seed);
  const size_t n = 3 + rng.UniformInt(10);
  g.AddVariables(n);
  for (VarId v = 0; v < n; ++v) {
    if (rng.Bernoulli(0.3)) g.SetEvidence(v, rng.Bernoulli(0.5));
  }
  const size_t groups = 2 + rng.UniformInt(8);
  for (size_t i = 0; i < groups; ++i) {
    const VarId head = static_cast<VarId>(rng.UniformInt(n));
    const auto w = rng.Bernoulli(0.5)
                       ? g.AddWeight(rng.Uniform(-2, 2), rng.Bernoulli(0.5),
                                     "w" + std::to_string(i))
                       : g.GetOrCreateTiedWeight("tied/" + std::to_string(i % 3));
    const auto sem = static_cast<Semantics>(rng.UniformInt(3));
    const auto grp = g.AddGroup(static_cast<uint32_t>(i), head, w, sem);
    const size_t clauses = rng.UniformInt(4);  // 0 clauses = prior factor
    for (size_t c = 0; c < clauses; ++c) {
      std::vector<factor::Literal> lits;
      const size_t n_lits = rng.UniformInt(3);
      for (size_t l = 0; l < n_lits; ++l) {
        const VarId v = static_cast<VarId>(rng.UniformInt(n));
        if (v == head) continue;
        bool dup = false;
        for (const auto& lit : lits) dup |= lit.var == v;
        if (!dup) lits.push_back({v, rng.Bernoulli(0.3)});
      }
      const auto cid = g.AddClause(grp, lits);
      if (rng.Bernoulli(0.2)) g.DeactivateClause(cid);
    }
    if (rng.Bernoulli(0.15)) g.DeactivateGroup(grp);
  }
  return g;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!bytes.empty()) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
}

TEST(CompiledGraphTest, AccessorsMatchSourceGraph) {
  FactorGraph g;
  g.AddVariables(4);
  g.SetEvidence(1, true);
  g.SetEvidence(2, false);
  const WeightId w0 = g.AddWeight(0.75, true, "w0");
  const WeightId w1 = g.GetOrCreateTiedWeight("FE/tied");
  const GroupId g0 = g.AddGroup(7, /*head=*/0, w0, Semantics::kRatio);
  const ClauseId c0 = g.AddClause(g0, {{1, false}, {3, true}});
  const GroupId g1 = g.AddGroup(9, /*head=*/3, w1, Semantics::kLogical);
  g.AddClause(g1, {{0, false}});

  const CompiledGraph compiled = CompiledGraph::Compile(g);
  EXPECT_EQ(compiled.NumVariables(), 4u);
  EXPECT_EQ(compiled.NumWeights(), 2u);
  EXPECT_EQ(compiled.NumGroups(), 2u);
  EXPECT_EQ(compiled.NumClauses(), 2u);

  EXPECT_FALSE(compiled.IsEvidence(0));
  EXPECT_TRUE(compiled.IsEvidence(1));
  EXPECT_TRUE(compiled.EvidenceValue(1).value());
  EXPECT_FALSE(compiled.EvidenceValue(2).value());
  EXPECT_FALSE(compiled.EvidenceValue(3).has_value());

  EXPECT_DOUBLE_EQ(compiled.WeightValue(w0), 0.75);
  EXPECT_TRUE(compiled.WeightLearnable(w0));
  EXPECT_EQ(compiled.WeightDescription(w0), "w0");
  EXPECT_EQ(compiled.WeightDescription(w1), "FE/tied");

  const auto& cg0 = compiled.group(0);
  EXPECT_EQ(cg0.head, 0u);
  EXPECT_EQ(cg0.weight, w0);
  EXPECT_EQ(cg0.rule_id, 7u);
  EXPECT_EQ(cg0.semantics, Semantics::kRatio);
  EXPECT_EQ(compiled.OriginalGroupId(0), g0);
  EXPECT_EQ(compiled.OriginalClauseId(0), c0);

  const auto lits = compiled.ClauseLiterals(0);
  ASSERT_EQ(lits.size(), 2u);
  EXPECT_EQ(lits[0].var, 1u);
  EXPECT_EQ(lits[0].negated, 0u);
  EXPECT_EQ(lits[1].var, 3u);
  EXPECT_EQ(lits[1].negated, 1u);

  // Variable 0 heads group 0 and appears in group 1's clause body.
  const auto heads = compiled.HeadGroups(0);
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0], 0u);
  const auto body = compiled.BodyRefs(0);
  ASSERT_EQ(body.size(), 1u);
  EXPECT_EQ(body[0].clause, 1u);
  EXPECT_EQ(body[0].negated, 0u);

  // Tied weight w1 backs group 1 only.
  const auto wg = compiled.GroupsForWeight(w1);
  ASSERT_EQ(wg.size(), 1u);
  EXPECT_EQ(wg[0], 1u);
}

TEST(CompiledGraphTest, CompactionDropsInactiveAndPreservesOrder) {
  FactorGraph g;
  g.AddVariables(3);
  const WeightId w = g.AddWeight(1.0, false, "w");
  const GroupId g0 = g.AddGroup(0, 0, w, Semantics::kLinear);
  g.AddClause(g0, {{1, false}});
  const GroupId g1 = g.AddGroup(1, 1, w, Semantics::kLinear);
  const ClauseId c1 = g.AddClause(g1, {{2, false}});
  g.AddClause(g1, {{0, true}});
  const GroupId g2 = g.AddGroup(2, 2, w, Semantics::kLinear);
  g.AddClause(g2, {{0, false}});
  g.DeactivateClause(c1);
  g.DeactivateGroup(g0);

  const CompiledGraph compiled = CompiledGraph::Compile(g);
  // g0 dropped entirely (with its clause); c1 dropped from g1.
  ASSERT_EQ(compiled.NumGroups(), 2u);
  ASSERT_EQ(compiled.NumClauses(), 2u);
  EXPECT_EQ(compiled.OriginalGroupId(0), g1);
  EXPECT_EQ(compiled.OriginalGroupId(1), g2);
  // Relative clause order within and across groups is preserved.
  const auto g1_clauses = compiled.GroupClauses(0);
  ASSERT_EQ(g1_clauses.size(), 1u);
  EXPECT_EQ(compiled.clause(g1_clauses[0]).group, 0u);
  // Variables and weights are never compacted.
  EXPECT_EQ(compiled.NumVariables(), 3u);
  EXPECT_EQ(compiled.NumWeights(), 1u);
}

TEST(CompiledGraphTest, DecompileIsIdempotentAfterCompaction) {
  for (uint64_t seed : {3u, 11u, 29u}) {
    const FactorGraph g = MixedGraph(seed);
    FactorGraph once = CompiledGraph::Compile(g).Decompile();
    FactorGraph twice = CompiledGraph::Compile(once).Decompile();
    EXPECT_TRUE(factor::GraphsEqual(once, twice)) << "seed " << seed;
  }
}

TEST(CompiledGraphTest, SequentialMarginalsBitIdenticalAcrossSeeds) {
  inference::GibbsOptions options;
  options.burn_in_sweeps = 10;
  options.sample_sweeps = 40;
  for (uint64_t seed : {1u, 2u, 5u, 9u, 17u, 23u}) {
    const FactorGraph g = MixedGraph(seed);
    const CompiledGraph compiled = CompiledGraph::Compile(g);
    options.seed = seed * 31 + 1;

    inference::GibbsSampler mutable_sampler(&g);
    inference::CompiledGibbsSampler compiled_sampler(&compiled);
    const auto m1 = mutable_sampler.EstimateMarginals(options);
    const auto m2 = compiled_sampler.EstimateMarginals(options);
    ASSERT_EQ(m1.marginals.size(), m2.marginals.size());
    for (size_t v = 0; v < m1.marginals.size(); ++v) {
      // Bit-identical, not approximately equal: same iteration order, same
      // FP accumulation order, same RNG consumption.
      EXPECT_EQ(m1.marginals[v], m2.marginals[v]) << "seed " << seed << " var " << v;
    }
  }
}

TEST(CompiledGraphTest, PriorOnlyGroupsMatchMutablePath) {
  // Groups with zero clauses (pure priors) exercise the head-groups loop with
  // an empty group-clause range.
  FactorGraph g;
  g.AddVariables(3);
  g.AddGroup(0, 0, g.AddWeight(0.8, false, "p0"), Semantics::kLinear);
  g.AddGroup(1, 1, g.AddWeight(-0.4, false, "p1"), Semantics::kLogical);
  g.SetEvidence(2, true);
  const CompiledGraph compiled = CompiledGraph::Compile(g);

  inference::GibbsOptions options;
  options.burn_in_sweeps = 5;
  options.sample_sweeps = 50;
  options.seed = 77;
  const auto m1 = inference::GibbsSampler(&g).EstimateMarginals(options);
  const auto m2 = inference::CompiledGibbsSampler(&compiled).EstimateMarginals(options);
  for (size_t v = 0; v < m1.marginals.size(); ++v) {
    EXPECT_EQ(m1.marginals[v], m2.marginals[v]);
  }
}

TEST(CompiledGraphTest, ReplicatedSamplerParity) {
  const FactorGraph g = MixedGraph(13);
  const CompiledGraph compiled = CompiledGraph::Compile(g);
  inference::GibbsOptions options;
  options.burn_in_sweeps = 8;
  options.sample_sweeps = 24;
  options.sync_every_sweeps = 8;
  options.seed = 5;
  // Two replicas, one worker each: deterministic on both paths.
  inference::ReplicatedGibbsSampler s1(&g, 2, 2);
  inference::CompiledReplicatedGibbsSampler s2(&compiled, 2, 2);
  const auto m1 = s1.EstimateMarginals(options);
  const auto m2 = s2.EstimateMarginals(options);
  ASSERT_EQ(m1.marginals.size(), m2.marginals.size());
  for (size_t v = 0; v < m1.marginals.size(); ++v) {
    EXPECT_EQ(m1.marginals[v], m2.marginals[v]) << "var " << v;
  }
}

TEST(CompiledGraphTest, EstimateMarginalsAutoRoutesBitIdentically) {
  const FactorGraph g = MixedGraph(21);
  inference::GibbsOptions options;
  options.burn_in_sweeps = 6;
  options.sample_sweeps = 20;
  options.seed = 3;
  options.use_compiled_graph = false;
  const auto mutable_result = inference::EstimateMarginalsAuto(g, options);
  options.use_compiled_graph = true;
  const auto compiled_result = inference::EstimateMarginalsAuto(g, options);
  ASSERT_EQ(mutable_result.marginals.size(), compiled_result.marginals.size());
  for (size_t v = 0; v < mutable_result.marginals.size(); ++v) {
    EXPECT_EQ(mutable_result.marginals[v], compiled_result.marginals[v]);
  }
}

TEST(CompiledGraphTest, LearnerParityCompiledVsMutable) {
  FactorGraph g1 = MixedGraph(6);
  FactorGraph g2 = MixedGraph(6);  // identical construction
  inference::LearnerOptions options;
  options.epochs = 8;
  options.seed = 19;
  options.use_compiled_graph = false;
  inference::Learner(&g1).Learn(options);
  options.use_compiled_graph = true;
  inference::Learner(&g2).Learn(options);
  ASSERT_EQ(g1.NumWeights(), g2.NumWeights());
  for (WeightId w = 0; w < g1.NumWeights(); ++w) {
    EXPECT_EQ(g1.WeightValue(w), g2.WeightValue(w)) << "weight " << w;
  }
}

TEST(CompiledGraphTest, MaterializationKernelParity) {
  const FactorGraph g = MixedGraph(8);
  incremental::MaterializationOptions options;
  options.num_samples = 40;
  options.gibbs_burn_in = 10;
  options.seed = 4;
  options.use_compiled_kernel = false;
  auto s1 = incremental::BuildMaterializationSnapshot(g, options);
  options.use_compiled_kernel = true;
  auto s2 = incremental::BuildMaterializationSnapshot(g, options);
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_EQ((*s1)->store.size(), (*s2)->store.size());
  for (size_t i = 0; i < (*s1)->store.size(); ++i) {
    EXPECT_EQ((*s1)->store.sample(i), (*s2)->store.sample(i)) << "sample " << i;
  }
  ASSERT_EQ((*s1)->materialized_marginals.size(),
            (*s2)->materialized_marginals.size());
  for (size_t v = 0; v < (*s1)->materialized_marginals.size(); ++v) {
    EXPECT_EQ((*s1)->materialized_marginals[v], (*s2)->materialized_marginals[v]);
  }
}

TEST(CompiledGraphIoTest, SaveLoadSaveIsByteStable) {
  const FactorGraph g = MixedGraph(10);
  const std::string p1 = TempPath("cg_stable_1.bin");
  const std::string p2 = TempPath("cg_stable_2.bin");
  ASSERT_TRUE(factor::SaveCompiledGraph(CompiledGraph::Compile(g), p1).ok());
  auto loaded = factor::LoadCompiledGraph(p1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(factor::SaveCompiledGraph(*loaded, p2).ok());
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(CompiledGraphIoTest, MmapAndBufferedLoadsAgree) {
  const FactorGraph g = MixedGraph(12);
  const std::string path = TempPath("cg_mmap.bin");
  ASSERT_TRUE(factor::SaveGraph(g, path).ok());

  factor::GraphLoadOptions mmap_opts;
  mmap_opts.use_mmap = true;
  factor::GraphLoadOptions buffered_opts;
  buffered_opts.use_mmap = false;
  auto a = factor::LoadCompiledGraph(path, mmap_opts);
  auto b = factor::LoadCompiledGraph(path, buffered_opts);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->Checksum(), b->Checksum());

  inference::GibbsOptions options;
  options.burn_in_sweeps = 5;
  options.sample_sweeps = 20;
  options.seed = 2;
  const auto m1 = inference::CompiledGibbsSampler(&*a).EstimateMarginals(options);
  const auto m2 = inference::CompiledGibbsSampler(&*b).EstimateMarginals(options);
  for (size_t v = 0; v < m1.marginals.size(); ++v) {
    EXPECT_EQ(m1.marginals[v], m2.marginals[v]);
  }
  std::remove(path.c_str());
}

TEST(CompiledGraphIoTest, LoadedGraphMatchesOriginalDistribution) {
  for (uint64_t seed : {4u, 14u, 24u}) {
    const FactorGraph g = MixedGraph(seed);
    const std::string path = TempPath("cg_dist_" + std::to_string(seed) + ".bin");
    ASSERT_TRUE(factor::SaveGraph(g, path).ok());
    auto loaded = factor::LoadGraph(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(
        factor::GraphsEqual(CompiledGraph::Compile(g).Decompile(), *loaded));
    auto e1 = inference::ExactInference(g, 16);
    auto e2 = inference::ExactInference(*loaded, 16);
    ASSERT_TRUE(e1.ok() && e2.ok());
    for (VarId v = 0; v < g.NumVariables(); ++v) {
      EXPECT_NEAR(e1->marginals[v], e2->marginals[v], 1e-12) << "seed " << seed;
    }
    std::remove(path.c_str());
  }
}

TEST(CompiledGraphIoTest, EmptyGraphRoundTrips) {
  FactorGraph g;
  const std::string path = TempPath("cg_empty.bin");
  ASSERT_TRUE(factor::SaveGraph(g, path).ok());
  auto loaded = factor::LoadCompiledGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVariables(), 0u);
  EXPECT_EQ(loaded->NumGroups(), 0u);
  std::remove(path.c_str());
}

TEST(CompiledGraphIoTest, RejectsTruncationAtEveryBoundary) {
  const FactorGraph g = MixedGraph(16);
  const std::string path = TempPath("cg_trunc_src.bin");
  ASSERT_TRUE(factor::SaveGraph(g, path).ok());
  const std::vector<uint8_t> full = ReadFileBytes(path);
  ASSERT_GT(full.size(), sizeof(factor::CompiledGraphHeader));

  const std::string tpath = TempPath("cg_trunc.bin");
  // Every prefix length in a stride, plus the interesting boundaries: empty,
  // partial header, exact header, one-short-of-full.
  std::vector<size_t> sizes = {0, 1, sizeof(factor::CompiledGraphHeader) / 2,
                               sizeof(factor::CompiledGraphHeader),
                               full.size() - 1};
  for (size_t s = 8; s < full.size(); s += 97) sizes.push_back(s);
  for (size_t size : sizes) {
    WriteFileBytes(tpath,
                   std::vector<uint8_t>(full.begin(), full.begin() + size));
    auto loaded = factor::LoadCompiledGraph(tpath);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << size << " bytes";
  }
  // The untruncated file still loads.
  WriteFileBytes(tpath, full);
  EXPECT_TRUE(factor::LoadCompiledGraph(tpath).ok());
  std::remove(path.c_str());
  std::remove(tpath.c_str());
}

TEST(CompiledGraphIoTest, RejectsBitFlips) {
  const FactorGraph g = MixedGraph(18);
  const std::string path = TempPath("cg_flip_src.bin");
  ASSERT_TRUE(factor::SaveGraph(g, path).ok());
  const std::vector<uint8_t> full = ReadFileBytes(path);

  const std::string fpath = TempPath("cg_flip.bin");
  // Flip one bit at a spread of offsets across header and payload; deep
  // validation (checksum + bounds) must reject every one without crashing.
  for (size_t offset = 0; offset < full.size(); offset += 131) {
    std::vector<uint8_t> corrupt = full;
    corrupt[offset] ^= 0x10;
    WriteFileBytes(fpath, corrupt);
    auto loaded = factor::LoadCompiledGraph(fpath);
    EXPECT_FALSE(loaded.ok()) << "bit flip at offset " << offset;
  }
  std::remove(path.c_str());
  std::remove(fpath.c_str());
}

TEST(CompiledGraphIoTest, RejectsBadMagicVersionEndian) {
  const FactorGraph g = MixedGraph(20);
  const std::string path = TempPath("cg_hdr_src.bin");
  ASSERT_TRUE(factor::SaveGraph(g, path).ok());
  const std::vector<uint8_t> full = ReadFileBytes(path);
  const std::string hpath = TempPath("cg_hdr.bin");

  auto corrupt_u32 = [&](size_t offset, uint32_t value) {
    std::vector<uint8_t> bytes = full;
    std::memcpy(bytes.data() + offset, &value, sizeof(value));
    WriteFileBytes(hpath, bytes);
    return factor::LoadCompiledGraph(hpath);
  };
  auto corrupt_u64 = [&](size_t offset, uint64_t value) {
    std::vector<uint8_t> bytes = full;
    std::memcpy(bytes.data() + offset, &value, sizeof(value));
    WriteFileBytes(hpath, bytes);
    return factor::LoadCompiledGraph(hpath);
  };

  // Header layout: magic u64 @0, version u32 @8, endian u32 @12,
  // total_bytes u64 @16.
  EXPECT_FALSE(corrupt_u64(0, 0xdeadbeefULL).ok());
  EXPECT_FALSE(corrupt_u32(8, factor::kCompiledGraphVersion + 1).ok());
  EXPECT_FALSE(corrupt_u32(12, 0x04030201u).ok());
  EXPECT_FALSE(corrupt_u64(16, full.size() * 2).ok());

  // Also plain garbage and missing files.
  WriteFileBytes(hpath, {'n', 'o', 'p', 'e'});
  EXPECT_FALSE(factor::LoadCompiledGraph(hpath).ok());
  EXPECT_EQ(factor::LoadCompiledGraph("/nonexistent/graph.bin").status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
  std::remove(hpath.c_str());
}

}  // namespace
}  // namespace deepdive
