// First-class rule deltas (online program evolution): AddRule grounds only
// the new rule (proportional-work witness), RetractRule restores the pre-add
// state bit-for-bit from the rule journal at any thread count with compiled
// and uncompiled kernels, program identity (version/count/fingerprint) is
// published into result views, and a materialization build scheduled before
// a rule delta is discarded instead of resurrecting retracted factors.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/deepdive.h"
#include "factor/factor_graph.h"
#include "incremental/engine.h"
#include "util/random.h"
#include "util/thread_role.h"

namespace deepdive::core {
namespace {

constexpr char kProgram[] = R"(
  relation Person(s: int, m: int).
  relation Feature(m1: int, m2: int, f: string).
  query relation HasSpouse(m1: int, m2: int).
  evidence HasSpouseEv(m1: int, m2: int, l: bool) for HasSpouse.
  rule CAND: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
  factor PRIOR: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2
    weight = -0.5 semantics = logical.
)";

constexpr char kFeatureRule[] = R"(
  factor FE1: HasSpouse(m1, m2) :- Feature(m1, m2, f) weight = 0.8.
)";

std::vector<Tuple> PersonRows() {
  return {{Value(1), Value(10)}, {Value(1), Value(11)},
          {Value(2), Value(20)}, {Value(2), Value(21)}};
}

std::unique_ptr<DeepDive> Make(DeepDiveConfig config) REQUIRES(serving_thread) {
  auto dd = DeepDive::Create(kProgram, config);
  EXPECT_TRUE(dd.ok()) << dd.status().ToString();
  EXPECT_TRUE(dd.value()->LoadRows("Person", PersonRows()).ok());
  EXPECT_TRUE(dd.value()
                  ->LoadRows("Feature", {{Value(10), Value(11), Value("wife")},
                                         {Value(20), Value(21), Value("met")}})
                  .ok());
  EXPECT_TRUE(dd.value()->Initialize().ok());
  return std::move(dd).value();
}

TEST(RuleDeltaTest, AddRuleGroundsOnlyTheNewRule) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(FastTestConfig());
  const uint64_t emitted_before = dd->grounder()->groundings_emitted();

  auto report = dd->AddRule(kFeatureRule);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Two Feature rows match the rule; the whole program has 4 CAND pairs and
  // a prior over each, so proportional work == 2 proves no re-ground.
  EXPECT_EQ(report->grounding_work, 2u);
  EXPECT_EQ(dd->grounder()->groundings_emitted() - emitted_before, 2u);
  EXPECT_EQ(dd->grounder()->last_rule_groundings(), 2u);
  EXPECT_EQ(report->label, "add_rule:FE1");
  EXPECT_GT(report->epoch, 0u);
}

TEST(RuleDeltaTest, AddRuleValidatesItsFragment) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(FastTestConfig());
  // Deductive rules change view contents: rejected.
  EXPECT_EQ(dd->AddRule("rule D: HasSpouse(a, b) :- Feature(a, b, f).")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Unlabeled factor rules cannot be retracted: rejected.
  EXPECT_EQ(
      dd->AddRule("factor HasSpouse(a, b) :- Feature(a, b, f) weight = 1.")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  // Duplicate label: rejected.
  EXPECT_EQ(
      dd->AddRule("factor PRIOR: HasSpouse(a, b) :- Feature(a, b, f) "
                  "weight = 1.")
          .status()
          .code(),
      StatusCode::kAlreadyExists);
  // New relations must go through ApplyUpdate.
  EXPECT_EQ(dd->AddRule("relation Fresh(a: int).\n"
                        "factor F: HasSpouse(a, b) :- Feature(a, b, f) "
                        "weight = 1.")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RuleDeltaTest, ProgramIdentityIsPublishedIntoViews) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(FastTestConfig());
  const uint64_t version0 = dd->program_version();
  const uint64_t rules0 = dd->NumRules();
  const uint64_t fingerprint0 = dd->RulesFingerprint();
  EXPECT_EQ(rules0, 2u);  // CAND + PRIOR
  EXPECT_EQ(dd->Query()->rules_fingerprint, fingerprint0);

  ASSERT_TRUE(dd->AddRule(kFeatureRule).ok());
  EXPECT_EQ(dd->program_version(), version0 + 1);
  EXPECT_EQ(dd->NumRules(), rules0 + 1);
  EXPECT_NE(dd->RulesFingerprint(), fingerprint0);
  EXPECT_EQ(dd->Query()->program_version, version0 + 1);
  EXPECT_EQ(dd->Query()->rule_count, rules0 + 1);

  ASSERT_TRUE(dd->RetractRule("FE1").ok());
  EXPECT_EQ(dd->program_version(), version0 + 2);
  EXPECT_EQ(dd->NumRules(), rules0);
  // The fingerprint hashes canonical rule text in declaration order, so the
  // add/retract round trip lands back on the original program identity.
  EXPECT_EQ(dd->RulesFingerprint(), fingerprint0);
  EXPECT_EQ(dd->Query()->rules_fingerprint, fingerprint0);
}

/// Property: AddRule -> RetractRule restores marginals, weights and active
/// structure bit-for-bit to the never-added state, for every combination of
/// inference thread count and compiled/uncompiled kernel. The pre-add state
/// IS the never-added state (AddRule is the only intervening operation), so
/// the comparison holds even where multi-threaded sampling is not
/// run-to-run deterministic.
TEST(RuleDeltaTest, AddRetractRoundTripsBitIdentical) {
  deepdive::serving_thread.AssertHeld();
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    for (const bool compiled : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " compiled=" + std::to_string(compiled));
      DeepDiveConfig config = FastTestConfig();
      config.gibbs.num_threads = threads;
      config.gibbs.use_compiled_graph = compiled;
      config.learner.use_compiled_graph = compiled;
      config.materialization.num_threads = threads;
      config.materialization.use_compiled_kernel = compiled;
      auto dd = Make(config);

      const std::vector<double> marginals_before = dd->marginal_vector();
      const size_t clauses_before = dd->ground().graph.NumActiveClauses();
      const size_t weights_before = dd->ground().graph.NumWeights();
      std::vector<double> weight_values_before(weights_before);
      for (size_t w = 0; w < weights_before; ++w) {
        weight_values_before[w] = dd->ground().graph.WeightValue(w);
      }
      const uint64_t fingerprint_before = dd->RulesFingerprint();

      ASSERT_TRUE(dd->AddRule(kFeatureRule).ok());
      auto retract = dd->RetractRule("FE1");
      ASSERT_TRUE(retract.ok()) << retract.status().ToString();
      // Journal restore: full acceptance, no re-inference.
      EXPECT_DOUBLE_EQ(retract->acceptance_rate, 1.0);

      EXPECT_EQ(dd->ground().graph.NumActiveClauses(), clauses_before);
      EXPECT_EQ(dd->RulesFingerprint(), fingerprint_before);
      const std::vector<double>& after = dd->marginal_vector();
      ASSERT_GE(after.size(), marginals_before.size());
      for (size_t v = 0; v < marginals_before.size(); ++v) {
        EXPECT_EQ(marginals_before[v], after[v]) << "var " << v;
      }
      // Pre-existing weights revert exactly.
      for (size_t w = 0; w < weights_before; ++w) {
        EXPECT_EQ(dd->ground().graph.WeightValue(w), weight_values_before[w])
            << "weight " << w;
      }
    }
  }
}

TEST(RuleDeltaTest, RerunModeRoutesRuleDeltasThroughFullPipeline) {
  deepdive::serving_thread.AssertHeld();
  DeepDiveConfig config = FastTestConfig();
  config.mode = ExecutionMode::kRerun;
  auto dd = Make(config);
  auto report = dd->AddRule(kFeatureRule);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->strategy, incremental::Strategy::kRerun);
  ASSERT_TRUE(dd->RetractRule("FE1").ok());
  EXPECT_EQ(dd->NumRules(), 2u);
}

// ---------------------------------------------------------------------------
// Stale-snapshot regression: a materialization build scheduled before a rule
// delta must NOT install afterwards — installing it would resurrect the
// retracted rule's factors in the serving snapshot.

factor::FactorGraph ChainGraph(uint64_t seed) {
  factor::FactorGraph g;
  Rng rng(seed);
  g.AddVariables(6);
  for (factor::VarId v = 0; v < 5; ++v) {
    g.AddSimpleFactor(v, {{static_cast<factor::VarId>(v + 1), false}},
                      g.AddWeight(rng.Uniform(-0.8, 0.8), false));
  }
  for (factor::VarId v = 0; v < 6; ++v) {
    g.AddSimpleFactor(v, {}, g.AddWeight(rng.Uniform(-0.3, 0.3), false));
  }
  return g;
}

incremental::MaterializationOptions TestMaterialization() {
  incremental::MaterializationOptions options;
  options.num_samples = 1500;
  options.gibbs_thin = 2;
  options.gibbs_burn_in = 50;
  options.variational.num_samples = 200;
  options.variational.fit_epochs = 80;
  options.variational.lambda = 0.05;
  options.remat_on_exhaustion = false;
  return options;
}

TEST(RuleDeltaTest, RematInFlightAcrossRetractionIsDiscarded) {
  deepdive::serving_thread.AssertHeld();
  factor::FactorGraph g = ChainGraph(7);
  incremental::IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());
  ASSERT_EQ(engine.snapshot_generation(), 1u);

  // Add a rule's worth of structure, then schedule an async rebuild that
  // stalls before publishing — a snapshot of the graph WITH the rule.
  factor::GraphDelta add;
  add.new_groups.push_back(g.AddSimpleFactor(
      0, {{factor::VarId{3}, false}}, g.AddWeight(1.5, false)));
  incremental::EngineOptions eopts;
  ASSERT_TRUE(engine.AddRule(add, eopts).ok());
  const uint64_t version_with_rule = engine.rule_set_version();

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  incremental::MaterializationOptions mopts = TestMaterialization();
  mopts.async = true;
  mopts.on_before_publish = [released] { released.wait(); };
  ASSERT_TRUE(engine.MaterializeAsync(mopts).ok());
  ASSERT_TRUE(engine.MaterializationInFlight());

  // Retract the rule while the build is in flight: the pending snapshot was
  // built against the now-superseded rule set.
  factor::GraphDelta retract;
  retract.removed_groups = add.new_groups;
  g.DeactivateGroup(add.new_groups.front());
  ASSERT_TRUE(engine.RetractRule(retract, eopts, nullptr).ok());
  EXPECT_GT(engine.rule_set_version(), version_with_rule);

  release.set_value();
  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  // The stale build must be discarded, not installed: generation unchanged,
  // and the serving snapshot still reflects the retracted graph (an install
  // would also trip the engine's rule_set_version consistency check).
  EXPECT_EQ(engine.snapshot_generation(), 1u);
  EXPECT_FALSE(engine.MaterializationInFlight());
}

}  // namespace
}  // namespace deepdive::core
