#include <gtest/gtest.h>

#include "dsl/program.h"
#include "grounding/grounder.h"
#include "storage/database.h"

namespace deepdive::grounding {
namespace {

constexpr char kSpouseProgram[] = R"(
  relation Person(s: int, m: int).
  relation Feature(m1: int, m2: int, f: string).
  query relation HasSpouse(m1: int, m2: int).
  evidence HasSpouseEv(m1: int, m2: int, l: bool) for HasSpouse.
  rule CAND: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
  factor FE: HasSpouse(m1, m2) :- Feature(m1, m2, f) weight = w(f) semantics = ratio.
  factor SYM: HasSpouse(m2, m1) :- HasSpouse(m1, m2) weight = 0.5.
)";

struct Fixture {
  dsl::Program program;
  Database db;

  Fixture() {
    auto p = dsl::CompileProgram(kSpouseProgram);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    program = std::move(p).value();
    EXPECT_TRUE(program.InstantiateSchema(&db).ok());
  }

  void LoadScenario() {
    // Sentence 1 mentions 10, 11; sentence 2 mentions 11, 12.
    Table* person = db.GetTable("Person");
    ASSERT_TRUE(person->Insert({Value(1), Value(10)}).ok());
    ASSERT_TRUE(person->Insert({Value(1), Value(11)}).ok());
    ASSERT_TRUE(person->Insert({Value(2), Value(11)}).ok());
    ASSERT_TRUE(person->Insert({Value(2), Value(12)}).ok());
    // Candidates (the CAND rule would produce these; grounding reads the
    // query table, so materialize them here as the view layer would).
    Table* spouse = db.GetTable("HasSpouse");
    for (auto [a, b] : {std::pair{10, 11}, {11, 10}, {11, 12}, {12, 11}}) {
      ASSERT_TRUE(spouse->Insert({Value(a), Value(b)}).ok());
    }
    Table* feature = db.GetTable("Feature");
    ASSERT_TRUE(feature->Insert({Value(10), Value(11), Value("and_his_wife")}).ok());
    ASSERT_TRUE(feature->Insert({Value(11), Value(12), Value("met_with")}).ok());
    ASSERT_TRUE(feature->Insert({Value(11), Value(10), Value("and_his_wife")}).ok());
    // Evidence: (10, 11) is a positive example.
    ASSERT_TRUE(
        db.GetTable("HasSpouseEv")->Insert({Value(10), Value(11), Value(true)}).ok());
  }
};

TEST(GrounderTest, VariablesCreatedPerQueryTuple) {
  Fixture f;
  f.LoadScenario();
  auto ground = GroundProgram(f.program, &f.db);
  ASSERT_TRUE(ground.ok()) << ground.status().ToString();
  EXPECT_EQ(ground->graph.NumVariables(), 4u);
  EXPECT_NE(ground->FindVariable("HasSpouse", {Value(10), Value(11)}), factor::kNoVar);
  EXPECT_EQ(ground->FindVariable("HasSpouse", {Value(99), Value(1)}), factor::kNoVar);
  EXPECT_EQ(ground->VariablesOf("HasSpouse").size(), 4u);
}

TEST(GrounderTest, EvidenceApplied) {
  Fixture f;
  f.LoadScenario();
  auto ground = GroundProgram(f.program, &f.db);
  ASSERT_TRUE(ground.ok());
  const factor::VarId v = ground->FindVariable("HasSpouse", {Value(10), Value(11)});
  EXPECT_EQ(ground->graph.EvidenceValue(v), std::optional<bool>(true));
  const factor::VarId u = ground->FindVariable("HasSpouse", {Value(11), Value(12)});
  EXPECT_FALSE(ground->graph.IsEvidence(u));
}

TEST(GrounderTest, TiedWeightsSharedAcrossGroundings) {
  Fixture f;
  f.LoadScenario();
  auto ground = GroundProgram(f.program, &f.db);
  ASSERT_TRUE(ground.ok());
  // Both "and_his_wife" groundings must use the same weight; "met_with"
  // gets its own. Plus the fixed SYM weight.
  size_t learnable = 0;
  for (factor::WeightId w = 0; w < ground->graph.NumWeights(); ++w) {
    if (ground->graph.weight(w).learnable) ++learnable;
  }
  EXPECT_EQ(learnable, 2u);  // w(and_his_wife), w(met_with)
}

TEST(GrounderTest, SymmetryRuleCreatesBodyLiterals) {
  Fixture f;
  f.LoadScenario();
  auto ground = GroundProgram(f.program, &f.db);
  ASSERT_TRUE(ground.ok());
  const factor::VarId v_ab = ground->FindVariable("HasSpouse", {Value(10), Value(11)});
  const factor::VarId v_ba = ground->FindVariable("HasSpouse", {Value(11), Value(10)});
  // SYM gives v_ab a head group whose clause contains v_ba, and vice versa.
  bool found = false;
  for (factor::GroupId g : ground->graph.HeadGroups(v_ba)) {
    for (factor::ClauseId c : ground->graph.group(g).clauses) {
      for (const factor::Literal& lit : ground->graph.clause(c).literals) {
        found |= lit.var == v_ab;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(GrounderTest, GroupCountsMatchExpectation) {
  Fixture f;
  f.LoadScenario();
  auto ground = GroundProgram(f.program, &f.db);
  ASSERT_TRUE(ground.ok());
  // FE: 3 feature rows -> 3 groups (distinct (head, weight) pairs).
  // SYM: 4 candidate orderings -> 4 groups.
  EXPECT_EQ(ground->graph.NumGroups(), 7u);
  EXPECT_EQ(ground->graph.NumActiveClauses(), 7u);
}

TEST(GrounderTest, EmptyDatabaseGroundsEmptyGraph) {
  Fixture f;
  auto ground = GroundProgram(f.program, &f.db);
  ASSERT_TRUE(ground.ok());
  EXPECT_EQ(ground->graph.NumVariables(), 0u);
  EXPECT_EQ(ground->graph.NumGroups(), 0u);
}

TEST(GrounderTest, DeterministicAcrossRuns) {
  Fixture f1, f2;
  f1.LoadScenario();
  f2.LoadScenario();
  auto g1 = GroundProgram(f1.program, &f1.db);
  auto g2 = GroundProgram(f2.program, &f2.db);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1->graph.NumVariables(), g2->graph.NumVariables());
  EXPECT_EQ(g1->graph.NumGroups(), g2->graph.NumGroups());
  EXPECT_EQ(g1->graph.NumClauses(), g2->graph.NumClauses());
  EXPECT_EQ(g1->var_index, g2->var_index);
}

}  // namespace
}  // namespace deepdive::grounding
