#include <gtest/gtest.h>

#include "factor/factor_graph.h"
#include "incremental/variational.h"
#include "inference/exact.h"
#include "inference/gibbs.h"
#include "kbc/metrics.h"
#include "util/random.h"

namespace deepdive::incremental {
namespace {

using factor::FactorGraph;
using factor::GraphDelta;
using factor::VarId;
using factor::WeightId;

/// Chain with strong couplings: a good target for pairwise approximation.
FactorGraph StrongChain(uint64_t seed, size_t num_vars) {
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(num_vars);
  for (size_t i = 0; i + 1 < num_vars; ++i) {
    const double w = rng.Bernoulli(0.5) ? 1.2 : -1.2;
    g.AddSimpleFactor(static_cast<VarId>(i), {{static_cast<VarId>(i + 1), false}},
                      g.AddWeight(w, false));
  }
  for (size_t i = 0; i < num_vars; ++i) {
    g.AddSimpleFactor(static_cast<VarId>(i), {},
                      g.AddWeight(rng.Uniform(-0.3, 0.3), false));
  }
  return g;
}

VariationalOptions TestOptions(double lambda) {
  VariationalOptions options;
  options.lambda = lambda;
  options.num_samples = 400;
  options.gibbs_burn_in = 100;
  options.fit_epochs = 200;
  options.seed = 99;
  return options;
}

TEST(VariationalTest, SparsityIncreasesWithLambda) {
  FactorGraph g = StrongChain(1, 12);
  size_t last_edges = 1000;
  for (double lambda : {0.01, 0.3, 0.95}) {
    auto m = VariationalMaterialization::Materialize(g, TestOptions(lambda));
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    EXPECT_LE(m->NumEdges(), last_edges);
    last_edges = m->NumEdges();
  }
  EXPECT_EQ(last_edges, 0u);  // lambda ~ 1 kills every edge
}

TEST(VariationalTest, NzPairsRestrictEdgeCandidates) {
  FactorGraph g = StrongChain(2, 10);
  auto m = VariationalMaterialization::Materialize(g, TestOptions(0.0));
  ASSERT_TRUE(m.ok());
  // A chain has exactly n-1 co-occurring pairs.
  EXPECT_EQ(m->NumNzPairs(), 9u);
  EXPECT_LE(m->NumEdges(), 9u);
}

TEST(VariationalTest, ApproximationMatchesMarginalsAtSmallLambda) {
  FactorGraph g = StrongChain(3, 10);
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());

  auto m = VariationalMaterialization::Materialize(g, TestOptions(0.05));
  ASSERT_TRUE(m.ok());
  inference::GibbsSampler sampler(&m->approx_graph());
  inference::GibbsOptions gopts;
  gopts.burn_in_sweeps = 200;
  gopts.sample_sweeps = 3000;
  gopts.seed = 7;
  const auto approx = sampler.EstimateMarginals(gopts);
  const double kl = kbc::MeanSymmetricKL(exact->marginals, approx.marginals);
  EXPECT_LT(kl, 0.08) << "KL(original || approx) too large";
}

TEST(VariationalTest, LargerLambdaGivesWorseApproximation) {
  FactorGraph g = StrongChain(4, 10);
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());

  auto kl_for = [&](double lambda) {
    auto m = VariationalMaterialization::Materialize(g, TestOptions(lambda));
    EXPECT_TRUE(m.ok());
    inference::GibbsSampler sampler(&m->approx_graph());
    inference::GibbsOptions gopts;
    gopts.burn_in_sweeps = 200;
    gopts.sample_sweeps = 3000;
    gopts.seed = 11;
    return kbc::MeanSymmetricKL(exact->marginals,
                                sampler.EstimateMarginals(gopts).marginals);
  };
  // Edge-free approximation must be clearly worse than the dense one.
  EXPECT_LT(kl_for(0.05), kl_for(0.99) + 0.02);
}

TEST(VariationalTest, EvidencePreservedInApproxGraph) {
  FactorGraph g = StrongChain(5, 8);
  g.SetEvidence(0, true);
  auto m = VariationalMaterialization::Materialize(g, TestOptions(0.1));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->approx_graph().EvidenceValue(0), std::optional<bool>(true));
  EXPECT_EQ(m->approx_graph().NumVariables(), g.NumVariables());
}

TEST(VariationalTest, BuildInferenceGraphAppendsDelta) {
  FactorGraph g = StrongChain(6, 8);
  auto m = VariationalMaterialization::Materialize(g, TestOptions(0.1));
  ASSERT_TRUE(m.ok());

  GraphDelta delta;
  const WeightId w = g.AddWeight(1.0, true, "new-feature");
  delta.new_groups.push_back(g.AddSimpleFactor(2, {{3, false}}, w));
  g.SetEvidence(4, true);
  delta.evidence_changes.push_back({4, std::nullopt, true});

  FactorGraph inf = BuildVariationalInferenceGraph(g, m->approx_graph(), delta);
  EXPECT_EQ(inf.NumVariables(), g.NumVariables());
  EXPECT_EQ(inf.NumGroups(), m->approx_graph().NumGroups() + 1);
  EXPECT_EQ(inf.EvidenceValue(4), std::optional<bool>(true));
  // The copied group carries the original weight value.
  const factor::FactorGroup& copied = inf.group(inf.NumGroups() - 1);
  EXPECT_DOUBLE_EQ(inf.WeightValue(copied.weight), 1.0);
}

TEST(VariationalTest, SearchLambdaStopsBeforeQualityCollapse) {
  FactorGraph g = StrongChain(7, 10);
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  auto lambda = SearchLambda(g, TestOptions(0.0), 0.001, 0.05, exact->marginals);
  ASSERT_TRUE(lambda.ok()) << lambda.status().ToString();
  EXPECT_GE(*lambda, 0.001);
  EXPECT_LE(*lambda, 10.0);
}

TEST(VariationalTest, EdgeStatsExposeCovariances) {
  FactorGraph g = StrongChain(8, 6);
  auto m = VariationalMaterialization::Materialize(g, TestOptions(0.0));
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->edge_stats().size(), 5u);
  // Strong couplings (|w| = 1.2) produce clearly nonzero spin covariance.
  double max_abs = 0;
  for (const auto& e : m->edge_stats()) max_abs = std::max(max_abs, std::abs(e.covariance));
  EXPECT_GT(max_abs, 0.3);
}

}  // namespace
}  // namespace deepdive::incremental
