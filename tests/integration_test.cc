// Cross-module integration properties:
//   * DSL print -> parse -> print fixpoint (round-trip property)
//   * end-to-end DeepDive marginals vs exact enumeration on tiny programs
//   * incremental update sequences keep the relational + graph state
//     consistent with a from-scratch rebuild at the DeepDive API level
#include <gtest/gtest.h>

#include "core/deepdive.h"
#include "dsl/parser.h"
#include "dsl/program.h"
#include "inference/exact.h"
#include "kbc/metrics.h"
#include "util/random.h"
#include "util/thread_role.h"

namespace deepdive {
namespace {

// ---------- DSL round-trip ----------

class DslRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DslRoundTrip, PrintParsePrintIsFixpoint) {
  auto program = dsl::CompileProgram(GetParam());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const std::string printed = program->ToString();
  auto reparsed = dsl::CompileProgram(printed);
  ASSERT_TRUE(reparsed.ok()) << "reparse of:\n" << printed << "\n"
                             << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, DslRoundTrip,
    ::testing::Values(
        "relation R(a: int, b: string).",
        "query relation Q(x: int). relation R(x: int, f: string)."
        " factor FE: Q(x) :- R(x, f) weight = w(f) semantics = ratio.",
        "query relation Q(x: int). relation R(x: int)."
        " evidence E(x: int, l: bool) for Q."
        " rule S: E(x, true) :- R(x).",
        "relation A(x: int). relation B(x: int). relation H(x: int)."
        " rule H(x) :- A(x), !B(x), x != 3.",
        "query relation Q(a: int, b: int). relation P(s: int, m: int)."
        " factor SYM: Q(b, a) :- Q(a, b), P(s, a) weight = -1.5"
        " semantics = logical."));

// ---------- end-to-end vs exact ----------

constexpr char kTinyProgram[] = R"(
  relation Person(s: int, m: int).
  relation Feature(m1: int, m2: int, f: string).
  query relation HasSpouse(m1: int, m2: int).
  evidence HasSpouseEv(m1: int, m2: int, l: bool) for HasSpouse.
  rule CAND: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
  factor PRIOR: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2
    weight = -0.6 semantics = logical.
  factor FE: HasSpouse(m1, m2) :- Feature(m1, m2, f) weight = w(f).
  factor SYM: HasSpouse(m2, m1) :- HasSpouse(m1, m2) weight = 0.8 semantics = logical.
)";

TEST(EndToEndTest, MarginalsTrackExactEnumeration) {
  deepdive::serving_thread.AssertHeld();
  core::DeepDiveConfig config = core::FastTestConfig();
  config.mode = core::ExecutionMode::kRerun;
  config.gibbs.burn_in_sweeps = 200;
  config.gibbs.sample_sweeps = 8000;
  auto dd = core::DeepDive::Create(kTinyProgram, config);
  ASSERT_TRUE(dd.ok());
  ASSERT_TRUE(
      (*dd)->LoadRows("Person", {{Value(1), Value(10)}, {Value(1), Value(11)}}).ok());
  ASSERT_TRUE(
      (*dd)->LoadRows("Feature", {{Value(10), Value(11), Value("wife")}}).ok());
  ASSERT_TRUE(
      (*dd)->LoadRows("HasSpouseEv", {{Value(10), Value(11), Value(true)}}).ok());
  ASSERT_TRUE((*dd)->Initialize().ok());

  auto exact = inference::ExactInference((*dd)->ground().graph);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  for (const auto& [tuple, p] : (*dd)->Marginals("HasSpouse")) {
    const factor::VarId v = (*dd)->ground().FindVariable("HasSpouse", tuple);
    EXPECT_NEAR(p, exact->marginals[v], 0.05) << TupleToString(tuple);
  }
}

// ---------- randomized incremental update sequences ----------

class IncrementalApiProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalApiProperty, StateConsistentWithFreshRebuild) {
  Rng rng(GetParam());

  core::DeepDiveConfig config = core::FastTestConfig();
  config.mode = core::ExecutionMode::kIncremental;
  auto inc = core::DeepDive::Create(kTinyProgram, config);
  ASSERT_TRUE(inc.ok());

  std::set<std::pair<int64_t, int64_t>> persons;
  for (int i = 0; i < 4; ++i) {
    persons.insert({static_cast<int64_t>(rng.UniformInt(2)),
                    static_cast<int64_t>(rng.UniformInt(4))});
  }
  std::vector<Tuple> person_rows;
  for (const auto& [s, m] : persons) person_rows.push_back({Value(s), Value(m)});
  ASSERT_TRUE((*inc)->LoadRows("Person", person_rows).ok());
  ASSERT_TRUE((*inc)->Initialize().ok());

  // Random update sequence: data in/out, features, labels.
  std::set<std::pair<int64_t, int64_t>> live_persons = persons;
  std::vector<Tuple> features, labels;
  for (int step = 0; step < 4; ++step) {
    core::UpdateSpec spec;
    spec.label = "step" + std::to_string(step);
    const int64_t s = static_cast<int64_t>(rng.UniformInt(2));
    const int64_t m = static_cast<int64_t>(rng.UniformInt(4));
    if (live_persons.count({s, m}) && rng.Bernoulli(0.3)) {
      spec.deletes["Person"] = {{Value(s), Value(m)}};
      live_persons.erase({s, m});
    } else if (!live_persons.count({s, m})) {
      spec.inserts["Person"] = {{Value(s), Value(m)}};
      live_persons.insert({s, m});
    }
    if (rng.Bernoulli(0.6)) {
      Tuple f = {Value(static_cast<int64_t>(rng.UniformInt(4))),
                 Value(static_cast<int64_t>(rng.UniformInt(4))),
                 Value(rng.Bernoulli(0.5) ? "wife" : "met")};
      features.push_back(f);
      spec.inserts["Feature"].push_back(f);
    }
    if (rng.Bernoulli(0.4)) {
      Tuple l = {Value(static_cast<int64_t>(rng.UniformInt(4))),
                 Value(static_cast<int64_t>(rng.UniformInt(4))),
                 Value(rng.Bernoulli(0.5))};
      labels.push_back(l);
      spec.inserts["HasSpouseEv"].push_back(l);
    }
    auto report = (*inc)->ApplyUpdate(spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  // Fresh rebuild over the final state.
  auto fresh = core::DeepDive::Create(kTinyProgram, config);
  ASSERT_TRUE(fresh.ok());
  std::vector<Tuple> final_persons;
  for (const auto& [s, m] : live_persons) final_persons.push_back({Value(s), Value(m)});
  ASSERT_TRUE((*fresh)->LoadRows("Person", final_persons).ok());
  ASSERT_TRUE((*fresh)->LoadRows("Feature", features).ok());
  ASSERT_TRUE((*fresh)->LoadRows("HasSpouseEv", labels).ok());
  ASSERT_TRUE((*fresh)->Initialize().ok());

  // Relational state: candidate tables agree.
  std::set<std::string> inc_rows, fresh_rows;
  (*inc)->db()->GetTable("HasSpouse")->Scan(
      [&](RowId, const Tuple& t) { inc_rows.insert(TupleToString(t)); });
  (*fresh)->db()->GetTable("HasSpouse")->Scan(
      [&](RowId, const Tuple& t) { fresh_rows.insert(TupleToString(t)); });
  EXPECT_EQ(inc_rows, fresh_rows) << "seed " << GetParam();

  // Graph state: same evidence and same *active* grounding counts per live
  // candidate (exact distribution equality is covered at the grounding layer
  // by incremental_grounding_test; here we check API-level bookkeeping).
  EXPECT_EQ((*inc)->ground().graph.NumActiveClauses(),
            (*fresh)->ground().graph.NumActiveClauses())
      << "seed " << GetParam();
  for (const auto& [tuple, var] : (*fresh)->ground().var_index.at("HasSpouse")) {
    const factor::VarId iv = (*inc)->ground().FindVariable("HasSpouse", tuple);
    ASSERT_NE(iv, factor::kNoVar) << TupleToString(tuple);
    EXPECT_EQ((*inc)->ground().graph.EvidenceValue(iv),
              (*fresh)->ground().graph.EvidenceValue(var))
        << TupleToString(tuple) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalApiProperty,
                         ::testing::Values(61, 62, 63, 64, 65, 66, 67, 68, 69, 70));

}  // namespace
}  // namespace deepdive
