// Async materialization: background snapshot builds, the atomic swap, delta
// rebase across the swap, remat triggers, persistence wiring, and the
// serve-from-old-snapshot guarantee while a rebuild is in flight. The
// concurrency-heavy cases also run under the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <string>

#include "factor/factor_graph.h"
#include "incremental/engine.h"
#include "inference/exact.h"
#include "util/random.h"
#include "util/thread_role.h"

namespace deepdive::incremental {
namespace {

using factor::FactorGraph;
using factor::GraphDelta;
using factor::VarId;

FactorGraph TwoComponentGraph(uint64_t seed) {
  // Two disconnected 4-variable chains (same workload as the engine suite).
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(8);
  for (VarId base : {VarId{0}, VarId{4}}) {
    for (VarId i = 0; i < 3; ++i) {
      g.AddSimpleFactor(base + i, {{static_cast<VarId>(base + i + 1), false}},
                        g.AddWeight(rng.Uniform(-0.8, 0.8), false));
    }
  }
  for (VarId v = 0; v < 8; ++v) {
    g.AddSimpleFactor(v, {}, g.AddWeight(rng.Uniform(-0.3, 0.3), false));
  }
  return g;
}

MaterializationOptions TestMaterialization() {
  MaterializationOptions options;
  options.num_samples = 4000;
  options.gibbs_thin = 2;
  options.gibbs_burn_in = 100;
  options.variational.num_samples = 300;
  options.variational.fit_epochs = 150;
  options.variational.lambda = 0.05;
  // Triggers are enabled per test; async alone must not fire any.
  options.remat_on_exhaustion = false;
  return options;
}

EngineOptions TestEngine() {
  EngineOptions options;
  options.mh_target_steps = 2000;
  options.gibbs.burn_in_sweeps = 100;
  options.gibbs.sample_sweeps = 1500;
  return options;
}

/// Applies the same structural mutation to any replica of the test graph and
/// returns the delta describing it.
GraphDelta AddFeatureFactor(FactorGraph* g, VarId head, VarId body, double w) {
  GraphDelta delta;
  delta.new_groups.push_back(
      g->AddSimpleFactor(head, {{body, false}}, g->AddWeight(w, /*learnable=*/true)));
  return delta;
}

TEST(AsyncMaterializationTest, MaterializeAsyncReturnsBeforePublish) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(21);
  IncrementalEngine engine(&g);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  MaterializationOptions mopts = TestMaterialization();
  mopts.async = true;
  mopts.on_before_publish = [released] { released.wait(); };

  // Returns while the build thread is still gated — i.e. without blocking.
  ASSERT_TRUE(engine.MaterializeAsync(mopts).ok());
  EXPECT_TRUE(engine.MaterializationInFlight());
  EXPECT_EQ(engine.snapshot_generation(), 0u);

  // A second build cannot be scheduled while one is in flight.
  EXPECT_EQ(engine.MaterializeAsync(mopts).code(),
            StatusCode::kFailedPrecondition);

  release.set_value();
  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_FALSE(engine.MaterializationInFlight());
  EXPECT_EQ(engine.snapshot_generation(), 1u);
  EXPECT_EQ(engine.materialization_stats().samples_collected, 4000u);
}

TEST(AsyncMaterializationTest, AsyncSnapshotBitIdenticalToSync) {
  deepdive::serving_thread.AssertHeld();
  // num_threads == 1 everywhere: the background build must produce exactly
  // the snapshot a blocking Materialize would.
  FactorGraph g_async = TwoComponentGraph(22);
  FactorGraph g_sync = TwoComponentGraph(22);
  IncrementalEngine async_engine(&g_async);
  IncrementalEngine sync_engine(&g_sync);

  MaterializationOptions mopts = TestMaterialization();
  ASSERT_TRUE(sync_engine.Materialize(mopts).ok());

  mopts.async = true;
  ASSERT_TRUE(async_engine.MaterializeAsync(mopts).ok());
  ASSERT_TRUE(async_engine.WaitForMaterialization().ok());

  ASSERT_EQ(async_engine.materialized_marginals().size(),
            sync_engine.materialized_marginals().size());
  for (size_t v = 0; v < sync_engine.materialized_marginals().size(); ++v) {
    EXPECT_EQ(async_engine.materialized_marginals()[v],
              sync_engine.materialized_marginals()[v])
        << "var " << v;
  }
  EXPECT_EQ(async_engine.SamplesRemaining(), sync_engine.SamplesRemaining());
  EXPECT_EQ(async_engine.HasVariational(), sync_engine.HasVariational());
}

/// The drift scenario: updates arrive while the background remat is in
/// flight. Marginals before the swap must be bit-identical to a control
/// engine that never remats; the post-swap snapshot must be bit-identical
/// to a fresh synchronous materialization of the graph state the build
/// copied; and the mid-build delta must survive the swap. Parameterized by
/// the materialization options so the replicated-sampler configuration runs
/// the identical scenario (its chains are deterministic at one thread per
/// replica, which this bit-exactness drill depends on).
void RunMidBuildDriftSwapScenario(const MaterializationOptions& base_mopts)
    REQUIRES(serving_thread) {
  FactorGraph g = TwoComponentGraph(23);
  FactorGraph g_control = TwoComponentGraph(23);
  IncrementalEngine engine(&g);
  IncrementalEngine control(&g_control);

  MaterializationOptions mopts = base_mopts;
  ASSERT_TRUE(engine.Materialize(mopts).ok());
  ASSERT_TRUE(control.Materialize(mopts).ok());

  // Schedule the rebuild; the build copies the graph *now* (pre-update).
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  MaterializationOptions remat = base_mopts;
  remat.async = true;
  remat.seed = 77;
  remat.on_before_publish = [released] { released.wait(); };
  ASSERT_TRUE(engine.MaterializeAsync(remat).ok());

  // The reference for the post-swap snapshot: the same pre-update graph
  // state, materialized synchronously with the same options.
  FactorGraph g_reference = TwoComponentGraph(23);
  IncrementalEngine reference(&g_reference);
  MaterializationOptions remat_sync = remat;
  remat_sync.async = false;
  remat_sync.on_before_publish = nullptr;
  ASSERT_TRUE(reference.Materialize(remat_sync).ok());

  // Mid-build update, applied identically to engine and control.
  const GraphDelta d_engine = AddFeatureFactor(&g, 1, 2, 0.9);
  const GraphDelta d_control = AddFeatureFactor(&g_control, 1, 2, 0.9);
  auto engine_outcome = engine.ApplyDelta(d_engine, TestEngine());
  auto control_outcome = control.ApplyDelta(d_control, TestEngine());
  ASSERT_TRUE(engine_outcome.ok());
  ASSERT_TRUE(control_outcome.ok());
  EXPECT_TRUE(engine_outcome->served_during_remat);
  EXPECT_FALSE(control_outcome->served_during_remat);
  EXPECT_EQ(engine_outcome->snapshot_generation, 1u);
  ASSERT_EQ(engine_outcome->marginals.size(), control_outcome->marginals.size());
  for (size_t v = 0; v < control_outcome->marginals.size(); ++v) {
    EXPECT_EQ(engine_outcome->marginals[v], control_outcome->marginals[v])
        << "pre-swap marginal diverged from old-snapshot answer, var " << v;
  }

  // Swap. The mid-build delta is rebased onto the new snapshot, not lost.
  release.set_value();
  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);
  ASSERT_EQ(engine.cumulative_delta().new_groups.size(), 1u);
  ASSERT_EQ(engine.materialized_marginals().size(),
            reference.materialized_marginals().size());
  for (size_t v = 0; v < reference.materialized_marginals().size(); ++v) {
    EXPECT_EQ(engine.materialized_marginals()[v],
              reference.materialized_marginals()[v])
        << "post-swap snapshot diverged from synchronous build, var " << v;
  }

  // Serving from the new snapshot + rebased delta tracks the exact posterior
  // of the updated graph.
  auto post = engine.ApplyDelta(GraphDelta{}, TestEngine());
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->snapshot_generation, 2u);
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(post->marginals[v], exact->marginals[v], 0.12) << "var " << v;
  }
}

TEST(AsyncMaterializationTest, UpdatesMidBuildServeFromOldSnapshotAndRebase) {
  deepdive::serving_thread.AssertHeld();
  RunMidBuildDriftSwapScenario(TestMaterialization());
}

TEST(AsyncMaterializationTest, UpdatesMidBuildDriftSwapWithReplicatedSampler) {
  deepdive::serving_thread.AssertHeld();
  // The identical drift/swap drill with a 2-replica materialization chain —
  // including consensus synchronizations during burn-in (cadence 40 against
  // a 100-sweep burn-in) and round-robin sample emission.
  MaterializationOptions mopts = TestMaterialization();
  mopts.num_replicas = 2;
  mopts.sync_every_sweeps = 40;
  RunMidBuildDriftSwapScenario(mopts);
}

TEST(AsyncMaterializationTest, ReplicatedSnapshotBitIdenticalAcrossSyncAndAsync) {
  deepdive::serving_thread.AssertHeld();
  // num_threads == 1 (one worker per replica): a replicated background build
  // must produce exactly the snapshot a blocking replicated Materialize
  // would.
  FactorGraph g_async = TwoComponentGraph(22);
  FactorGraph g_sync = TwoComponentGraph(22);
  IncrementalEngine async_engine(&g_async);
  IncrementalEngine sync_engine(&g_sync);

  MaterializationOptions mopts = TestMaterialization();
  mopts.num_replicas = 3;
  mopts.sync_every_sweeps = 25;
  ASSERT_TRUE(sync_engine.Materialize(mopts).ok());

  mopts.async = true;
  ASSERT_TRUE(async_engine.MaterializeAsync(mopts).ok());
  ASSERT_TRUE(async_engine.WaitForMaterialization().ok());

  EXPECT_EQ(async_engine.materialization_stats().samples_collected, 4000u);
  ASSERT_EQ(async_engine.materialized_marginals().size(),
            sync_engine.materialized_marginals().size());
  for (size_t v = 0; v < sync_engine.materialized_marginals().size(); ++v) {
    EXPECT_EQ(async_engine.materialized_marginals()[v],
              sync_engine.materialized_marginals()[v])
        << "var " << v;
  }
  EXPECT_EQ(async_engine.SamplesRemaining(), sync_engine.SamplesRemaining());
}

TEST(AsyncMaterializationTest, StoreExhaustionSchedulesBackgroundRemat) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(24);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  mopts.num_samples = 20;  // tiny store: one drifted update drains it
  mopts.async = true;
  mopts.remat_on_exhaustion = true;
  ASSERT_TRUE(engine.Materialize(mopts).ok());

  // A large new-feature delta collapses acceptance; the MH chain consumes
  // the whole store and falls back, which must schedule a background remat.
  GraphDelta delta;
  for (VarId v = 0; v < 4; ++v) {
    delta.new_groups.push_back(
        g.AddSimpleFactor(v, {}, g.AddWeight(3.0, /*learnable=*/true)));
  }
  auto outcome = engine.ApplyDelta(delta, TestEngine());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(engine.MaterializationInFlight());

  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);
  // The rebuilt snapshot covers the drifted graph: a fresh store and an
  // empty (fully rebased) cumulative delta.
  EXPECT_EQ(engine.SamplesRemaining(), 20u);
  EXPECT_TRUE(engine.cumulative_delta().empty());

  // Post-remat analysis is the cheap 100%-acceptance path again, and its
  // answer matches the exact posterior of the updated graph (loose bound:
  // the rebuilt store holds only 20 samples).
  auto post = engine.ApplyDelta(GraphDelta{}, TestEngine());
  ASSERT_TRUE(post.ok());
  EXPECT_DOUBLE_EQ(post->acceptance_rate, 1.0);
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(post->marginals[v], exact->marginals[v], 0.3) << "var " << v;
  }
}

TEST(AsyncMaterializationTest, AcceptanceFloorSchedulesBackgroundRemat) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(25);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  mopts.async = true;
  mopts.remat_acceptance_floor = 1.01;  // any real chain is below this
  ASSERT_TRUE(engine.Materialize(mopts).ok());

  auto outcome = engine.ApplyDelta(AddFeatureFactor(&g, 1, 2, 0.5), TestEngine());
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(outcome->acceptance_rate, 0.0);
  EXPECT_TRUE(engine.MaterializationInFlight());
  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);
}

TEST(AsyncMaterializationTest, UpdateCountSchedulesBackgroundRemat) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(26);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  mopts.async = true;
  mopts.remat_after_updates = 2;
  ASSERT_TRUE(engine.Materialize(mopts).ok());

  ASSERT_TRUE(engine.ApplyDelta(AddFeatureFactor(&g, 0, 1, 0.3), TestEngine()).ok());
  EXPECT_FALSE(engine.MaterializationInFlight());  // 1 update < 2
  ASSERT_TRUE(engine.ApplyDelta(AddFeatureFactor(&g, 5, 6, -0.3), TestEngine()).ok());
  EXPECT_TRUE(engine.MaterializationInFlight());  // 2nd update fires the trigger

  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);
  // Counter rebased: the next update is the first against the new snapshot.
  ASSERT_TRUE(engine.ApplyDelta(AddFeatureFactor(&g, 2, 3, 0.2), TestEngine()).ok());
  EXPECT_FALSE(engine.MaterializationInFlight());
}

TEST(AsyncMaterializationTest, FailedBackgroundBuildSurfacesInWaitAndKeepsServing) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(27);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());

  MaterializationOptions bad = TestMaterialization();
  bad.async = true;
  bad.load_sample_store = "/nonexistent/materialization.bin";
  ASSERT_TRUE(engine.MaterializeAsync(bad).ok());
  EXPECT_EQ(engine.WaitForMaterialization().code(), StatusCode::kNotFound);

  // The old snapshot keeps serving.
  EXPECT_EQ(engine.snapshot_generation(), 1u);
  auto outcome = engine.ApplyDelta(AddFeatureFactor(&g, 1, 2, 0.4), TestEngine());
  ASSERT_TRUE(outcome.ok());
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(outcome->marginals[v], exact->marginals[v], 0.12) << "var " << v;
  }
}

TEST(AsyncMaterializationTest, FailedBuildDisarmsTriggersUntilErrorObserved) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(33);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  mopts.async = true;
  mopts.remat_after_updates = 1;  // would fire on every update
  ASSERT_TRUE(engine.Materialize(mopts).ok());

  // Force a failing build (its error must not be clobbered by auto-remats).
  MaterializationOptions bad = mopts;
  bad.load_sample_store = "/nonexistent/materialization.bin";
  ASSERT_TRUE(engine.MaterializeAsync(bad).ok());

  // Updates keep being served; whether the failing build is still in flight
  // or already failed, the armed remat trigger must NOT fire on top of it
  // (no silent retry storm, no clobbered status).
  ASSERT_TRUE(engine.ApplyDelta(AddFeatureFactor(&g, 0, 1, 0.3), TestEngine()).ok());
  EXPECT_EQ(engine.WaitForMaterialization().code(), StatusCode::kNotFound);
  EXPECT_FALSE(engine.MaterializationInFlight());

  // Observing the error re-arms the triggers: the next update schedules a
  // fresh (resampling, not store-loading) rebuild that succeeds.
  ASSERT_TRUE(engine.ApplyDelta(AddFeatureFactor(&g, 5, 6, 0.3), TestEngine()).ok());
  EXPECT_TRUE(engine.MaterializationInFlight());
  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);
  EXPECT_FALSE(engine.materialization_stats().store_loaded);
}

TEST(AsyncMaterializationTest, BudgetStarvedBuildDoesNotClobberSavedStore) {
  deepdive::serving_thread.AssertHeld();
  // A build whose time budget expires during burn-in collects zero samples;
  // it must not truncate a previously saved good store.
  const std::string path = ::testing::TempDir() + "/starved_save_store.bin";
  FactorGraph g = TwoComponentGraph(34);
  {
    IncrementalEngine engine(&g);
    MaterializationOptions good = TestMaterialization();
    good.num_samples = 50;
    good.save_sample_store = path;
    ASSERT_TRUE(engine.Materialize(good).ok());
  }
  {
    IncrementalEngine engine(&g);
    MaterializationOptions starved = TestMaterialization();
    starved.gibbs_burn_in = 2000000000;
    starved.time_budget_seconds = 0.05;
    starved.save_sample_store = path;
    ASSERT_TRUE(engine.Materialize(starved).ok());
    EXPECT_EQ(engine.materialization_stats().samples_collected, 0u);
  }
  auto loaded = SampleStore::Load(path, g.NumVariables());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 50u);  // the good store survived
  std::remove(path.c_str());
}

TEST(AsyncMaterializationTest, SwapUnderConcurrentApplyDeltaSequence) {
  deepdive::serving_thread.AssertHeld();
  // Real concurrency, no gates: a sequence of updates races the background
  // build. Whatever interleaving the scheduler produces, every update must
  // be served from a coherent snapshot and the drained engine must end on a
  // fresh generation. (This test also runs under TSan in CI.)
  FactorGraph g = TwoComponentGraph(28);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  ASSERT_TRUE(engine.Materialize(mopts).ok());

  MaterializationOptions remat = TestMaterialization();
  remat.async = true;
  ASSERT_TRUE(engine.MaterializeAsync(remat).ok());

  double w = 0.2;
  for (int u = 0; u < 8; ++u) {
    const VarId head = static_cast<VarId>((u * 3) % 8);
    const VarId body = static_cast<VarId>(4 * (head / 4) + (head + 1) % 4);
    auto outcome =
        engine.ApplyDelta(AddFeatureFactor(&g, head, body, w), TestEngine());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    for (double m : outcome->marginals) {
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
    w = -w;
  }

  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);
  auto post = engine.ApplyDelta(GraphDelta{}, TestEngine());
  ASSERT_TRUE(post.ok());
}

TEST(AsyncMaterializationTest, SwapUnderConcurrentUpdatesWithReplicatedBuild) {
  deepdive::serving_thread.AssertHeld();
  // The no-gates race again, with the background build running the
  // replicated sampler (its replica pool + per-replica Hogwild pools) while
  // the serving thread applies updates. Primarily a TSan target.
  FactorGraph g = TwoComponentGraph(35);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  mopts.num_replicas = 2;
  mopts.num_threads = 4;  // 2 Hogwild workers per replica
  mopts.sync_every_sweeps = 30;
  ASSERT_TRUE(engine.Materialize(mopts).ok());

  MaterializationOptions remat = mopts;
  remat.async = true;
  ASSERT_TRUE(engine.MaterializeAsync(remat).ok());

  double w = 0.2;
  for (int u = 0; u < 6; ++u) {
    const VarId head = static_cast<VarId>((u * 3) % 8);
    const VarId body = static_cast<VarId>(4 * (head / 4) + (head + 1) % 4);
    auto outcome =
        engine.ApplyDelta(AddFeatureFactor(&g, head, body, w), TestEngine());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    for (double m : outcome->marginals) {
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
    w = -w;
  }

  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);
  EXPECT_EQ(engine.SamplesRemaining(), 4000u);
}

TEST(AsyncMaterializationTest, DestructorCancelsInFlightBuild) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(29);
  {
    IncrementalEngine engine(&g);
    MaterializationOptions huge = TestMaterialization();
    huge.num_samples = 500000000;  // would take minutes without cancellation
    huge.async = true;
    ASSERT_TRUE(engine.MaterializeAsync(huge).ok());
    // Destruction must cancel the chain and join quickly (the suite-level
    // ctest timeout is the failure mode if it does not).
  }
  SUCCEED();
}

TEST(AsyncMaterializationTest, ColdAsyncStartServesRerunBeforeFirstSwap) {
  deepdive::serving_thread.AssertHeld();
  // With async initialization, updates can outrun the very first snapshot.
  // An empty delta must NOT hit the materialized-marginals fast path (there
  // is no materialization yet — that would answer uniform 0.5); it has to
  // fall through to a full rerun.
  FactorGraph g = TwoComponentGraph(31);
  IncrementalEngine engine(&g);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  MaterializationOptions mopts = TestMaterialization();
  mopts.async = true;
  mopts.on_before_publish = [released] { released.wait(); };
  ASSERT_TRUE(engine.MaterializeAsync(mopts).ok());

  auto outcome = engine.ApplyDelta(GraphDelta{}, TestEngine());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->snapshot_generation, 0u);
  EXPECT_EQ(outcome->strategy, Strategy::kRerun);
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(outcome->marginals[v], exact->marginals[v], 0.12) << "var " << v;
  }

  release.set_value();
  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_EQ(engine.snapshot_generation(), 1u);
}

TEST(AsyncMaterializationTest, TriggeredRematResamplesInsteadOfReloadingStore) {
  deepdive::serving_thread.AssertHeld();
  // A materialization bootstrapped from a persisted store must not replay
  // that (stale, original-Pr(0)) store when a drift-triggered remat fires —
  // the rebuild has to sample the current graph.
  const std::string path = ::testing::TempDir() + "/remat_reload_store.bin";
  FactorGraph g_save = TwoComponentGraph(32);
  IncrementalEngine saver(&g_save);
  MaterializationOptions save_opts = TestMaterialization();
  save_opts.num_samples = 20;
  save_opts.save_sample_store = path;
  ASSERT_TRUE(saver.Materialize(save_opts).ok());

  FactorGraph g = TwoComponentGraph(32);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  mopts.num_samples = 20;
  mopts.async = true;
  mopts.remat_on_exhaustion = true;
  mopts.load_sample_store = path;
  ASSERT_TRUE(engine.Materialize(mopts).ok());
  EXPECT_TRUE(engine.materialization_stats().store_loaded);

  // Drain the tiny store with a drifted update; the remat it triggers must
  // build a sampled (not loaded) snapshot.
  GraphDelta delta;
  for (VarId v = 0; v < 4; ++v) {
    delta.new_groups.push_back(
        g.AddSimpleFactor(v, {}, g.AddWeight(3.0, /*learnable=*/true)));
  }
  ASSERT_TRUE(engine.ApplyDelta(delta, TestEngine()).ok());
  EXPECT_TRUE(engine.MaterializationInFlight());
  ASSERT_TRUE(engine.WaitForMaterialization().ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);
  EXPECT_FALSE(engine.materialization_stats().store_loaded);
  std::remove(path.c_str());
}

TEST(AsyncMaterializationTest, SaveThenLoadSkipsSamplingChain) {
  deepdive::serving_thread.AssertHeld();
  const std::string path = ::testing::TempDir() + "/async_mat_store.bin";
  FactorGraph g_save = TwoComponentGraph(30);
  IncrementalEngine saver(&g_save);
  MaterializationOptions save_opts = TestMaterialization();
  save_opts.num_samples = 500;
  save_opts.save_sample_store = path;
  ASSERT_TRUE(saver.Materialize(save_opts).ok());
  EXPECT_FALSE(saver.materialization_stats().store_loaded);

  FactorGraph g_load = TwoComponentGraph(30);
  IncrementalEngine loader(&g_load);
  MaterializationOptions load_opts = TestMaterialization();
  load_opts.num_samples = 7;  // ignored: the loaded store defines the samples
  load_opts.load_sample_store = path;
  ASSERT_TRUE(loader.Materialize(load_opts).ok());
  EXPECT_TRUE(loader.materialization_stats().store_loaded);
  EXPECT_EQ(loader.materialization_stats().samples_collected, 500u);
  ASSERT_EQ(loader.materialized_marginals().size(),
            saver.materialized_marginals().size());
  for (size_t v = 0; v < saver.materialized_marginals().size(); ++v) {
    EXPECT_EQ(loader.materialized_marginals()[v],
              saver.materialized_marginals()[v])
        << "var " << v;
  }

  // A differently-shaped graph must reject the store instead of replaying
  // mis-sized proposals.
  FactorGraph g_wrong;
  g_wrong.AddVariables(5);
  IncrementalEngine wrong(&g_wrong);
  EXPECT_EQ(wrong.Materialize(load_opts).code(), StatusCode::kInvalidArgument);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepdive::incremental
