// Negative compile case for GUARDED_BY enforcement through the annotated
// Mutex wrapper.
//
// Reading or writing a GUARDED_BY(mu) member without holding mu must be
// rejected by Clang's -Werror=thread-safety ("reading variable 'pending'
// requires holding mutex 'mu'"). Under GCC the annotations are no-ops and
// this file must compile cleanly (positive control). CMake registers this
// file as a build-only ctest case with WILL_FAIL set exactly when the
// compiler is Clang.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace deepdive {
namespace {

struct Mailbox {
  mutable Mutex mu;
  int pending GUARDED_BY(mu) = 0;
};

}  // namespace

int UnlockedRead(const Mailbox& box) {
  return box.pending;  // missing MutexLock lock(box.mu)
}

void UnlockedWrite(Mailbox& box) {
  box.pending = 1;  // missing MutexLock lock(box.mu)
}

}  // namespace deepdive
