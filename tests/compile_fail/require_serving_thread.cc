// Negative compile case for the serving-thread role capability.
//
// ResultPublisher::next_epoch() is REQUIRES(serving_thread): it reads the
// writer-private epoch counter. Calling it from a function that has neither
// acquired nor asserted the role must be rejected by Clang's
// -Werror=thread-safety ("calling function ... requires holding role
// 'serving_thread'"). Under GCC the annotations are no-ops and this file
// must compile cleanly — the positive control that the contract machinery
// costs nothing off-Clang. CMake registers this file as a build-only ctest
// case with WILL_FAIL set exactly when the compiler is Clang.
#include "incremental/result_view.h"

namespace deepdive {

uint64_t StrayReaderPeeksAtWriterState(const incremental::ResultPublisher& p) {
  // No ScopedThreadRole, no AssertHeld: this call site is a stray reader.
  return p.next_epoch();
}

}  // namespace deepdive
