#include <gtest/gtest.h>

#include "factor/factor_graph.h"
#include "incremental/strawman.h"
#include "inference/exact.h"
#include "util/random.h"

namespace deepdive::incremental {
namespace {

using factor::FactorGraph;
using factor::GraphDelta;
using factor::Semantics;
using factor::VarId;
using factor::WeightId;

FactorGraph SmallGraph(uint64_t seed, size_t num_vars) {
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(num_vars);
  for (size_t i = 0; i + 1 < num_vars; ++i) {
    const WeightId w = g.AddWeight(rng.Uniform(-0.8, 0.8), false);
    g.AddSimpleFactor(static_cast<VarId>(i),
                      {{static_cast<VarId>(i + 1), false}}, w);
  }
  for (size_t i = 0; i < num_vars; ++i) {
    g.AddSimpleFactor(static_cast<VarId>(i), {}, g.AddWeight(rng.Uniform(-0.5, 0.5), false));
  }
  return g;
}

TEST(StrawmanTest, OriginalMarginalsMatchExact) {
  FactorGraph g = SmallGraph(3, 8);
  auto strawman = StrawmanMaterialization::Materialize(g);
  ASSERT_TRUE(strawman.ok()) << strawman.status().ToString();
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(strawman->OriginalMarginals()[v], exact->marginals[v], 1e-9);
  }
  EXPECT_EQ(strawman->NumWorlds(), 1u << 8);
}

TEST(StrawmanTest, RefusesLargeGraphs) {
  FactorGraph g;
  g.AddVariables(30);
  auto strawman = StrawmanMaterialization::Materialize(g, 22);
  ASSERT_FALSE(strawman.ok());
  EXPECT_EQ(strawman.status().code(), StatusCode::kOutOfRange);
}

TEST(StrawmanTest, EvidenceReducesWorldCount) {
  FactorGraph g = SmallGraph(5, 8);
  g.SetEvidence(0, true);
  g.SetEvidence(1, false);
  auto strawman = StrawmanMaterialization::Materialize(g);
  ASSERT_TRUE(strawman.ok());
  EXPECT_EQ(strawman->NumWorlds(), 1u << 6);
  EXPECT_DOUBLE_EQ(strawman->OriginalMarginals()[0], 1.0);
  EXPECT_DOUBLE_EQ(strawman->OriginalMarginals()[1], 0.0);
}

TEST(StrawmanTest, IncrementalUpdateMatchesExact) {
  FactorGraph g = SmallGraph(7, 9);
  auto strawman = StrawmanMaterialization::Materialize(g);
  ASSERT_TRUE(strawman.ok());

  // Update: a new factor and a weight change.
  GraphDelta delta;
  const WeightId w_new = g.AddWeight(0.9, false);
  delta.new_groups.push_back(g.AddSimpleFactor(2, {{5, false}}, w_new));
  delta.weight_changes.push_back({0, g.WeightValue(0), g.WeightValue(0) + 0.4});
  g.SetWeightValue(0, g.WeightValue(0) + 0.4);

  auto updated = strawman->InferUpdated(g, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR((*updated)[v], exact->marginals[v], 1e-9) << "var " << v;
  }
}

TEST(StrawmanTest, IncrementalEvidenceUpdateMatchesExact) {
  FactorGraph g = SmallGraph(11, 8);
  auto strawman = StrawmanMaterialization::Materialize(g);
  ASSERT_TRUE(strawman.ok());

  GraphDelta delta;
  delta.evidence_changes.push_back({3, std::nullopt, true});
  g.SetEvidence(3, true);

  auto updated = strawman->InferUpdated(g, delta);
  ASSERT_TRUE(updated.ok());
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR((*updated)[v], exact->marginals[v], 1e-9) << "var " << v;
  }
}

TEST(StrawmanTest, RejectsNewVariables) {
  FactorGraph g = SmallGraph(13, 6);
  auto strawman = StrawmanMaterialization::Materialize(g);
  ASSERT_TRUE(strawman.ok());
  GraphDelta delta;
  delta.new_variables.push_back(g.AddVariable());
  auto updated = strawman->InferUpdated(g, delta);
  EXPECT_FALSE(updated.ok());
}

TEST(StrawmanTest, ByteSizeIsExponential) {
  FactorGraph small = SmallGraph(17, 4);
  FactorGraph big = SmallGraph(17, 10);
  auto s = StrawmanMaterialization::Materialize(small);
  auto b = StrawmanMaterialization::Materialize(big);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(s->ByteSize(), (1u << 4) * sizeof(double));
  EXPECT_EQ(b->ByteSize(), (1u << 10) * sizeof(double));
}

}  // namespace
}  // namespace deepdive::incremental
