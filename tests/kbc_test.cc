#include <gtest/gtest.h>

#include <cmath>

#include "kbc/candidates.h"
#include "kbc/corpus.h"
#include "kbc/drift.h"
#include "kbc/features.h"
#include "kbc/metrics.h"
#include "kbc/nlp.h"
#include "kbc/supervision.h"

namespace deepdive::kbc {
namespace {

TEST(CorpusTest, ProfilesCoverAllSystems) {
  const auto profiles = AllProfiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "Adversarial");
  EXPECT_EQ(profiles[1].name, "News");
  EXPECT_EQ(profiles[4].name, "Paleontology");
  // Paper statistics recorded.
  EXPECT_EQ(profiles[1].paper_docs, 1'800'000u);
  EXPECT_EQ(profiles[1].paper_relations, 34u);
}

TEST(CorpusTest, DeterministicForSeed) {
  const SystemProfile profile = ProfileFor(SystemKind::kNews);
  Corpus a = GenerateCorpus(profile, 5);
  Corpus b = GenerateCorpus(profile, 5);
  ASSERT_EQ(a.sentences.size(), b.sentences.size());
  for (size_t i = 0; i < a.sentences.size(); ++i) {
    EXPECT_EQ(a.sentences[i].content, b.sentences[i].content);
  }
  EXPECT_EQ(a.true_pairs, b.true_pairs);
  EXPECT_EQ(a.known_pairs, b.known_pairs);
}

TEST(CorpusTest, SizesMatchProfile) {
  SystemProfile profile = ProfileFor(SystemKind::kGenomics);
  Corpus corpus = GenerateCorpus(profile, 7);
  EXPECT_EQ(corpus.sentences.size(), profile.num_documents * profile.sentences_per_doc);
  EXPECT_EQ(corpus.true_pairs.size(), profile.num_true_pairs);
  EXPECT_EQ(corpus.negative_pairs.size(), profile.num_negative_pairs);
  EXPECT_LE(corpus.known_pairs.size(), corpus.true_pairs.size());
  EXPECT_GT(corpus.known_pairs.size(), 0u);
}

TEST(CorpusTest, NegativePairsDisjointFromTruePairs) {
  Corpus corpus = GenerateCorpus(ProfileFor(SystemKind::kPharma), 9);
  for (const auto& p : corpus.negative_pairs) {
    EXPECT_EQ(corpus.true_pairs.count(p), 0u);
  }
}

TEST(CorpusTest, CleanProfilesHaveMoreFaithfulSentences) {
  auto fidelity = [](SystemKind kind) {
    Corpus c = GenerateCorpus(ProfileFor(kind), 11);
    size_t faithful = 0, relation_sentences = 0;
    for (const auto& s : c.sentences) {
      if (!s.expresses_relation) continue;
      ++relation_sentences;
      if (s.content.find("and_his_wife") != std::string::npos) ++faithful;
    }
    return relation_sentences == 0
               ? 0.0
               : static_cast<double>(faithful) / relation_sentences;
  };
  EXPECT_GT(fidelity(SystemKind::kPaleontology), fidelity(SystemKind::kNews));
}

TEST(NlpTest, TokenizeAndMentions) {
  const auto tokens = TokenizeSentence("PERSON_3 and his wife PERSON_17 .");
  ASSERT_EQ(tokens.size(), 6u);
  const auto mentions = ExtractPersonMentions(tokens);
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].surface_entity, 3);
  EXPECT_EQ(mentions[0].token_index, 0u);
  EXPECT_EQ(mentions[1].surface_entity, 17);
}

TEST(NlpTest, ParsePersonTokenRejectsJunk) {
  EXPECT_FALSE(ParsePersonToken("PERSON_").has_value());
  EXPECT_FALSE(ParsePersonToken("PERSON_x").has_value());
  EXPECT_FALSE(ParsePersonToken("ORG_3").has_value());
  EXPECT_EQ(ParsePersonToken("PERSON_42"), std::optional<int64_t>(42));
}

TEST(NlpTest, PhraseBetween) {
  const std::vector<std::string> tokens = {"A", "and", "his", "wife", "B"};
  EXPECT_EQ(PhraseBetween(tokens, 0, 4), "and_his_wife");
  EXPECT_EQ(PhraseBetween(tokens, 4, 0), "and_his_wife");  // order-insensitive
  EXPECT_EQ(PhraseBetween(tokens, 0, 1), "");
}

TEST(CandidatesTest, MentionsAndLinks) {
  Corpus corpus = GenerateCorpus(ProfileFor(SystemKind::kPaleontology), 13);
  CandidateRows rows = GenerateCandidates(corpus, 17);
  // Two mentions per sentence.
  EXPECT_EQ(rows.person_candidates.size(), 2 * corpus.sentences.size());
  EXPECT_EQ(rows.entity_links.size(), rows.person_candidates.size());
  EXPECT_EQ(rows.sentences.size(), corpus.sentences.size());

  // With a 98%-accurate linker, most links are correct.
  size_t correct = 0;
  for (size_t i = 0; i < rows.entity_links.size(); ++i) {
    const int64_t mention = rows.entity_links[i][0].AsInt();
    const int64_t entity = rows.entity_links[i][1].AsInt();
    const int64_t sent = mention / kMentionStride;
    const auto& rec = corpus.sentences[static_cast<size_t>(sent)];
    if (entity == rec.entity1 || entity == rec.entity2) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / rows.entity_links.size(), 0.9);
}

TEST(FeaturesTest, ShallowAndDeepPerOrderedPair) {
  Corpus corpus = GenerateCorpus(ProfileFor(SystemKind::kGenomics), 19);
  FeatureRows rows = ExtractFeatures(corpus);
  // Each sentence has 2 mentions -> 2 ordered pairs, both with a phrase.
  EXPECT_EQ(rows.shallow.size(), 2 * corpus.sentences.size());
  EXPECT_EQ(rows.deep.size(), rows.shallow.size());
  // Deep features carry direction prefixes.
  bool fwd = false, rev = false;
  for (const Tuple& t : rows.deep) {
    const std::string& f = t[3].AsString();
    fwd |= f.rfind("fwd:", 0) == 0;
    rev |= f.rfind("rev:", 0) == 0;
  }
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(rev);
}

TEST(SupervisionTest, KbRowsBothOrientations) {
  Corpus corpus = GenerateCorpus(ProfileFor(SystemKind::kAdversarial), 23);
  KnowledgeBaseRows rows = BuildKnowledgeBase(corpus);
  EXPECT_EQ(rows.known_positive.size(), 2 * corpus.known_pairs.size());
  EXPECT_EQ(rows.known_negative.size(), 2 * corpus.negative_pairs.size());
}

TEST(MetricsTest, PrecisionRecallF1) {
  const std::vector<bool> predicted = {true, true, false, false, true};
  const std::vector<bool> actual = {true, false, true, false, true};
  const PrecisionRecall pr = ComputePrecisionRecall(predicted, actual);
  EXPECT_EQ(pr.true_positives, 2u);
  EXPECT_EQ(pr.false_positives, 1u);
  EXPECT_EQ(pr.false_negatives, 1u);
  EXPECT_NEAR(pr.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pr.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pr.f1, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, EmptyPredictionsHaveZeroF1) {
  const PrecisionRecall pr =
      ComputePrecisionRecall({false, false}, {true, false});
  EXPECT_EQ(pr.f1, 0.0);
}

TEST(MetricsTest, CalibrationCurveBuckets) {
  std::vector<double> probs = {0.05, 0.95, 0.92, 0.88};
  std::vector<bool> actual = {false, true, true, false};
  auto curve = CalibrationCurve(probs, actual, 10);
  ASSERT_EQ(curve.size(), 10u);
  EXPECT_EQ(curve[0].count, 1u);
  EXPECT_EQ(curve[9].count, 2u);
  EXPECT_DOUBLE_EQ(curve[9].empirical_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(curve[8].empirical_accuracy, 0.0);
}

TEST(MetricsTest, KlAndAgreement) {
  const std::vector<double> p = {0.9, 0.1, 0.5};
  EXPECT_DOUBLE_EQ(MeanSymmetricKL(p, p), 0.0);
  EXPECT_GT(MeanSymmetricKL(p, {0.1, 0.9, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(FractionDiffering(p, {0.9, 0.1, 0.4}, 0.05), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(HighConfidenceAgreement({0.95, 0.91, 0.2}, {0.92, 0.5, 0.99}, 0.9),
                   0.5);
}

TEST(DriftTest, StreamShiftsDistribution) {
  DriftOptions options;
  options.num_docs = 300;
  const auto docs = GenerateDriftStream(options);
  ASSERT_EQ(docs.size(), 300u);
  for (const auto& d : docs) EXPECT_FALSE(d.tokens.empty());
}

TEST(DriftTest, ModelLabelsTrainPrefixOnly) {
  DriftOptions options;
  options.num_docs = 100;
  const auto docs = GenerateDriftStream(options);
  DriftModel model = BuildDriftModel(docs, 0.3);
  EXPECT_EQ(model.train_count, 30u);
  EXPECT_TRUE(model.graph.IsEvidence(model.doc_vars[0]));
  EXPECT_FALSE(model.graph.IsEvidence(model.doc_vars[50]));
  ExtendTraining(&model, 0.6);
  EXPECT_TRUE(model.graph.IsEvidence(model.doc_vars[50]));
}

TEST(DriftTest, TestLossFiniteAndUntrainedIsChance) {
  DriftOptions options;
  options.num_docs = 100;
  const auto docs = GenerateDriftStream(options);
  DriftModel model = BuildDriftModel(docs, 0.3);
  const double loss = TestLoss(model);
  // All weights zero: loss = ln 2 per document.
  EXPECT_NEAR(loss, std::log(2.0), 1e-9);
}

}  // namespace
}  // namespace deepdive::kbc
