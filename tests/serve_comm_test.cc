// The communication tier: wire codec round-trips for every verb and result,
// hostile-input rejection (unknown verbs/tags, truncation, trailing bytes,
// oversized length prefixes), and frame I/O over a real socketpair.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <string>
#include <vector>

#include "serve/comm/frame.h"
#include "serve/comm/messages.h"
#include "serve/comm/wire.h"
#include "util/socket.h"

namespace deepdive::serve::comm {
namespace {

// ---------------------------------------------------------------------------
// WireWriter / WireReader primitives.

TEST(WireTest, RoundTripsPrimitives) {
  WireWriter w;
  w.PutU8(7);
  w.PutBool(true);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(0.725);
  w.PutString("hello\tworld\n");
  WireReader r(w.str());
  EXPECT_EQ(r.GetU8(), 7);
  EXPECT_TRUE(r.GetBool());
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 0.725);
  EXPECT_EQ(r.GetString(), "hello\tworld\n");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.ExpectDone().ok());
}

TEST(WireTest, TruncationIsStickyNotUB) {
  WireWriter w;
  w.PutU32(123);
  std::string bytes = w.Take();
  bytes.pop_back();  // truncate mid-integer
  WireReader r(bytes);
  EXPECT_EQ(r.GetU32(), 0u);  // failed reads return defaults
  EXPECT_FALSE(r.ok());
  // The error is sticky: further reads stay failed instead of resyncing.
  EXPECT_EQ(r.GetU64(), 0u);
  EXPECT_FALSE(r.ExpectDone().ok());
}

TEST(WireTest, StringLengthBeyondPayloadFails) {
  WireWriter w;
  w.PutU32(1000);  // claims a 1000-byte string...
  std::string bytes = w.Take();
  bytes += "short";  // ...but only 5 bytes follow
  WireReader r(bytes);
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Request / response codec.

TEST(MessagesTest, RequestRoundTripsEveryVerb) {
  std::vector<Request> requests;
  {
    Request r;
    r.tenant = "kb";
    QueryRequest q;
    q.relation = "HasSpouse";
    q.tuple_tsv = "10\t11";
    q.threshold = 0.5;
    r.body = q;
    requests.push_back(std::move(r));
  }
  {
    Request r;
    r.tenant = "kb";
    UpdateRequest u;
    u.label = "update#1";
    u.rules = "factor F: ...";
    u.inserts.push_back({"Phrase", "1\t2\tand his wife\n"});
    r.body = std::move(u);
    requests.push_back(std::move(r));
  }
  {
    Request r;
    r.tenant = "kb";
    ExportRequest e;
    e.relations = {"HasSpouse", "Trusted"};
    e.threshold = 0.9;
    r.body = std::move(e);
    requests.push_back(std::move(r));
  }
  {
    Request r;
    r.body = StatusRequest{};
    requests.push_back(std::move(r));
  }
  {
    Request r;
    r.tenant = "vote";
    CreateTenantRequest c;
    c.name = "vote";
    c.program = "relation Endorses(src: int, dst: int).";
    c.config.rerun_mode = true;
    c.config.seed = 7;
    c.config.epochs = 10;
    c.config.threads = 2;
    c.config.replicas = 2;
    c.config.sync_every = 25;
    c.config.async_materialize = true;
    c.config.save_materialization = "/tmp/store.bin";
    c.config.load_materialization = "/tmp/store2.bin";
    c.config.queue_capacity = 32;
    c.config.shed_watermark = 16;
    c.config.retry_after_ms = 250;
    c.data.push_back({"Endorses", "1\t100\n"});
    r.body = std::move(c);
    requests.push_back(std::move(r));
  }
  {
    Request r;
    r.body = ListTenantsRequest{};
    requests.push_back(std::move(r));
  }
  {
    Request r;
    r.tenant = "kb";
    r.body = SaveGraphRequest{"/tmp/graph.bin"};
    requests.push_back(std::move(r));
  }
  {
    Request r;
    r.body = ShutdownRequest{};
    requests.push_back(std::move(r));
  }

  ASSERT_EQ(requests.size(), 8u);  // one per verb
  for (const Request& request : requests) {
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << VerbName(request.verb()) << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->verb(), request.verb());
    EXPECT_EQ(decoded->tenant, request.tenant);
  }

  // Spot-check deep fields survive the trip.
  auto create = DecodeRequest(EncodeRequest(requests[4]));
  ASSERT_TRUE(create.ok());
  const auto& config = std::get<CreateTenantRequest>(create->body).config;
  EXPECT_TRUE(config.rerun_mode);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.replicas, 2u);
  EXPECT_EQ(config.save_materialization, "/tmp/store.bin");
  EXPECT_EQ(config.shed_watermark, 16u);
  EXPECT_EQ(config.retry_after_ms, 250u);
  auto update = DecodeRequest(EncodeRequest(requests[1]));
  ASSERT_TRUE(update.ok());
  const auto& inserts = std::get<UpdateRequest>(update->body).inserts;
  ASSERT_EQ(inserts.size(), 1u);
  EXPECT_EQ(inserts[0].relation, "Phrase");
  EXPECT_EQ(inserts[0].tsv, "1\t2\tand his wife\n");
}

TEST(MessagesTest, ResponseRoundTripsResults) {
  {
    Response response;
    QueryResult q;
    q.epoch = 3;
    q.found = true;
    q.marginal = 0.93;
    q.entries = 12;
    response.body = q;
    auto decoded = DecodeResponse(EncodeResponse(response));
    ASSERT_TRUE(decoded.ok());
    const auto& result = std::get<QueryResult>(decoded->body);
    EXPECT_EQ(result.epoch, 3u);
    EXPECT_TRUE(result.found);
    EXPECT_DOUBLE_EQ(result.marginal, 0.93);
    EXPECT_EQ(result.entries, 12u);
  }
  {
    Response response;
    ExportResult e;
    e.epoch = 5;
    e.chunks.push_back({"HasSpouse", "1.000000\t10\t11\n"});
    e.chunks.push_back({"Trusted", ""});
    response.body = std::move(e);
    auto decoded = DecodeResponse(EncodeResponse(response));
    ASSERT_TRUE(decoded.ok());
    const auto& result = std::get<ExportResult>(decoded->body);
    ASSERT_EQ(result.chunks.size(), 2u);
    EXPECT_EQ(result.chunks[0].tsv, "1.000000\t10\t11\n");
    EXPECT_EQ(result.chunks[1].relation, "Trusted");
  }
  {
    Response response;
    StatusResult s;
    TenantStatus t;
    t.name = "kb";
    t.ready = true;
    t.epoch = 9;
    t.updates_applied = 4;
    t.updates_shed = 2;
    t.queue_depth = 1;
    t.queue_capacity = 64;
    t.shed_watermark = 48;
    s.tenants.push_back(std::move(t));
    response.body = std::move(s);
    auto decoded = DecodeResponse(EncodeResponse(response));
    ASSERT_TRUE(decoded.ok());
    const auto& result = std::get<StatusResult>(decoded->body);
    ASSERT_EQ(result.tenants.size(), 1u);
    EXPECT_EQ(result.tenants[0].updates_shed, 2u);
    EXPECT_EQ(result.tenants[0].shed_watermark, 48u);
  }
  {
    Response response;
    response.body = SaveGraphResult{0xAAu, 1536u, 0xBBu};
    auto decoded = DecodeResponse(EncodeResponse(response));
    ASSERT_TRUE(decoded.ok());
    const auto& result = std::get<SaveGraphResult>(decoded->body);
    EXPECT_EQ(result.checksum, 0xAAu);
    EXPECT_EQ(result.image_bytes, 1536u);
    EXPECT_EQ(result.fingerprint, 0xBBu);
  }
}

TEST(MessagesTest, ShedResponseCarriesRetryAfter) {
  Response shed = Response::Error(
      Status::Unavailable("update queue is at its admission watermark"));
  shed.retry_after_ms = 150;
  auto decoded = DecodeResponse(EncodeResponse(shed));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kUnavailable);
  EXPECT_EQ(decoded->retry_after_ms, 150u);
  EXPECT_FALSE(decoded->ok());
  EXPECT_EQ(decoded->ToStatus().code(), StatusCode::kUnavailable);
}

TEST(MessagesTest, RejectsUnknownVerbAndTrailingBytes) {
  WireWriter w;
  w.PutU8(99);  // no such verb
  w.PutString("kb");
  EXPECT_FALSE(DecodeRequest(w.str()).ok());

  Request request;
  request.body = StatusRequest{};
  std::string bytes = EncodeRequest(request);
  bytes += "garbage";
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(MessagesTest, RejectsUnknownResponseTagAndCode) {
  {
    WireWriter w;
    w.PutU8(0);   // kOk
    w.PutString("");
    w.PutU32(0);
    w.PutU8(200);  // no such body tag
    EXPECT_FALSE(DecodeResponse(w.str()).ok());
  }
  {
    WireWriter w;
    w.PutU8(250);  // no such status code
    EXPECT_FALSE(DecodeResponse(w.str()).ok());
  }
}

// ---------------------------------------------------------------------------
// Frame layer over a real socketpair.

class FramePairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    left_ = Socket(fds[0]);
    right_ = Socket(fds[1]);
  }

  Socket left_;
  Socket right_;
};

TEST_F(FramePairTest, RoundTripsFrames) {
  ASSERT_TRUE(WriteFrame(left_, "hello").ok());
  ASSERT_TRUE(WriteFrame(left_, "").ok());  // empty payload is legal
  std::string payload;
  ASSERT_TRUE(ReadFrame(right_, &payload).ok());
  EXPECT_EQ(payload, "hello");
  ASSERT_TRUE(ReadFrame(right_, &payload).ok());
  EXPECT_EQ(payload, "");
}

TEST_F(FramePairTest, CleanHangupIsNotFound) {
  left_.Close();
  std::string payload;
  const Status status = ReadFrame(right_, &payload);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(FramePairTest, MidFrameTruncationIsInternal) {
  // A length prefix promising 100 bytes, then hang up after 3.
  const unsigned char prefix[4] = {0, 0, 0, 100};
  ASSERT_TRUE(left_.SendAll(prefix, 4).ok());
  ASSERT_TRUE(left_.SendAll("abc", 3).ok());
  left_.Close();
  std::string payload;
  const Status status = ReadFrame(right_, &payload);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(FramePairTest, OversizedLengthPrefixIsRejectedNotAllocated) {
  // 1 GiB announced: must fail fast as a protocol error, not try to recv.
  const unsigned char prefix[4] = {0x40, 0, 0, 0};
  ASSERT_TRUE(left_.SendAll(prefix, 4).ok());
  std::string payload;
  const Status status = ReadFrame(right_, &payload);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deepdive::serve::comm
