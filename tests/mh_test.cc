#include <gtest/gtest.h>

#include "factor/factor_graph.h"
#include "incremental/mh_sampler.h"
#include "incremental/sample_store.h"
#include "inference/exact.h"
#include "inference/gibbs.h"
#include "util/random.h"

namespace deepdive::incremental {
namespace {

using factor::FactorGraph;
using factor::GraphDelta;
using factor::VarId;
using factor::WeightId;

FactorGraph ChainGraph(uint64_t seed, size_t num_vars) {
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(num_vars);
  for (size_t i = 0; i + 1 < num_vars; ++i) {
    g.AddSimpleFactor(static_cast<VarId>(i), {{static_cast<VarId>(i + 1), false}},
                      g.AddWeight(rng.Uniform(-0.6, 0.6), false));
  }
  for (size_t i = 0; i < num_vars; ++i) {
    g.AddSimpleFactor(static_cast<VarId>(i), {},
                      g.AddWeight(rng.Uniform(-0.4, 0.4), false));
  }
  return g;
}

SampleStore MaterializeSamples(const FactorGraph& g, size_t count, uint64_t seed) {
  inference::GibbsSampler sampler(&g);
  inference::GibbsOptions options;
  options.burn_in_sweeps = 200;
  options.seed = seed;
  SampleStore store;
  store.AddAll(sampler.DrawSamples(count, 3, options));
  return store;
}

TEST(SampleStoreTest, CursorAndExhaustion) {
  SampleStore store;
  store.Add(BitVector(4));
  store.Add(BitVector(4, true));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.remaining(), 2u);
  EXPECT_NE(store.NextProposal(), nullptr);
  EXPECT_NE(store.NextProposal(), nullptr);
  EXPECT_EQ(store.NextProposal(), nullptr);
  EXPECT_TRUE(store.exhausted());
  store.ResetCursor();
  EXPECT_EQ(store.remaining(), 2u);
}

TEST(SampleStoreTest, ByteSizeCountsBits) {
  SampleStore store;
  for (int i = 0; i < 100; ++i) store.Add(BitVector(64));
  EXPECT_EQ(store.ByteSize(), 100u * 8u);
}

TEST(IndependentMHTest, EmptyDeltaAcceptsEverything) {
  FactorGraph g = ChainGraph(1, 10);
  SampleStore store = MaterializeSamples(g, 300, 7);
  GraphDelta empty;
  IndependentMH mh(&g, &empty);
  MHOptions options;
  options.target_steps = 300;
  auto result = mh.Run(&store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->acceptance_rate, 1.0);

  // Marginals should match a fresh Gibbs estimate of the (unchanged) graph.
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(result->marginals[v], exact->marginals[v], 0.12) << "var " << v;
  }
}

TEST(IndependentMHTest, ConvergesToUpdatedDistribution) {
  FactorGraph g = ChainGraph(3, 8);
  SampleStore store = MaterializeSamples(g, 4000, 9);

  // Moderate update: one new factor.
  GraphDelta delta;
  delta.new_groups.push_back(
      g.AddSimpleFactor(2, {{6, false}}, g.AddWeight(0.7, false)));

  IndependentMH mh(&g, &delta);
  MHOptions options;
  options.target_steps = 4000;
  auto result = mh.Run(&store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->acceptance_rate, 0.3);
  EXPECT_LT(result->acceptance_rate, 1.0);

  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(result->marginals[v], exact->marginals[v], 0.08) << "var " << v;
  }
}

TEST(IndependentMHTest, NewEvidenceForcesLabelsAndLowersAcceptance) {
  FactorGraph g = ChainGraph(5, 8);
  SampleStore store = MaterializeSamples(g, 3000, 11);

  GraphDelta delta;
  g.SetEvidence(0, true);
  g.SetEvidence(7, false);
  delta.evidence_changes.push_back({0, std::nullopt, true});
  delta.evidence_changes.push_back({7, std::nullopt, false});

  IndependentMH mh(&g, &delta);
  MHOptions options;
  options.target_steps = 3000;
  auto result = mh.Run(&store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->acceptance_rate, 1.0);
  EXPECT_DOUBLE_EQ(result->marginals[0], 1.0);
  EXPECT_DOUBLE_EQ(result->marginals[7], 0.0);
}

TEST(IndependentMHTest, ExhaustionReported) {
  FactorGraph g = ChainGraph(7, 6);
  SampleStore store = MaterializeSamples(g, 50, 13);
  GraphDelta empty;
  IndependentMH mh(&g, &empty);
  MHOptions options;
  options.target_steps = 500;
  auto result = mh.Run(&store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exhausted);
  EXPECT_TRUE(store.exhausted());
}

TEST(IndependentMHTest, ExtendsProposalsOverNewVariables) {
  FactorGraph g = ChainGraph(9, 6);
  SampleStore store = MaterializeSamples(g, 2000, 15);

  // Add a new variable strongly tied to variable 0.
  const VarId nv = g.AddVariable();
  GraphDelta delta;
  delta.new_variables.push_back(nv);
  delta.new_groups.push_back(g.AddSimpleFactor(nv, {}, g.AddWeight(2.0, false)));

  IndependentMH mh(&g, &delta);
  MHOptions options;
  options.target_steps = 2000;
  auto result = mh.Run(&store, options);
  ASSERT_TRUE(result.ok());
  // sigmoid(2 * 2.0) ~ 0.982.
  EXPECT_NEAR(result->marginals[nv], 0.982, 0.05);
}

TEST(IndependentMHTest, EmptyStoreIsExhaustedImmediately) {
  FactorGraph g = ChainGraph(11, 4);
  SampleStore store;
  GraphDelta empty;
  IndependentMH mh(&g, &empty);
  auto result = mh.Run(&store, MHOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exhausted);
  EXPECT_EQ(result->accepted, 0u);
}

TEST(IndependentMHTest, ParallelTrackedAccumulationBitIdentical) {
  // The tracked-marginal accumulation is a data-parallel reduction over the
  // tracked set (per-thread shard slices + batched run-length adds); it must
  // be bit-identical to the sequential per-step loop at any thread count.
  // 3000 tracked variables clears the parallelization threshold.
  const size_t n = 3000;
  FactorGraph g = ChainGraph(19, n);
  std::vector<VarId> tracked(n);
  for (size_t v = 0; v < n; ++v) tracked[v] = static_cast<VarId>(v);

  GraphDelta delta;
  delta.new_groups.push_back(
      g.AddSimpleFactor(5, {{9, false}}, g.AddWeight(0.9, false)));

  std::vector<double> reference;
  for (size_t threads : {1u, 4u}) {
    SampleStore store = MaterializeSamples(g, 60, 23);
    IndependentMH mh(&g, &delta);
    MHOptions options;
    options.target_steps = 60;
    options.track_vars = &tracked;
    options.num_threads = threads;
    auto result = mh.Run(&store, options);
    ASSERT_TRUE(result.ok());
    if (reference.empty()) {
      reference = result->marginals;
    } else {
      ASSERT_EQ(result->marginals.size(), reference.size());
      for (size_t v = 0; v < n; ++v) {
        ASSERT_EQ(result->marginals[v], reference[v])
            << "threads=" << threads << " var " << v;
      }
    }
  }
}

TEST(IndependentMHTest, UntrackedVariablesReportZeroNotLabels) {
  // With a tracked set, untracked variables — evidence included — must stay
  // exactly 0 (the caller keeps its own values for them); tracked evidence
  // still reports its label and tracked query variables a chain average.
  FactorGraph g = ChainGraph(25, 8);
  g.SetEvidence(0, true);
  g.SetEvidence(7, false);
  SampleStore store = MaterializeSamples(g, 500, 27);

  GraphDelta delta;
  delta.new_groups.push_back(
      g.AddSimpleFactor(2, {{3, false}}, g.AddWeight(0.5, false)));

  const std::vector<VarId> tracked = {0, 2, 3};
  IndependentMH mh(&g, &delta);
  MHOptions options;
  options.target_steps = 500;
  options.track_vars = &tracked;
  auto result = mh.Run(&store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->marginals[0], 1.0);  // tracked evidence: label
  EXPECT_GT(result->marginals[2], 0.0);         // tracked query: chain average
  EXPECT_LT(result->marginals[2], 1.0);
  EXPECT_DOUBLE_EQ(result->marginals[5], 0.0);  // untracked query: untouched
  EXPECT_DOUBLE_EQ(result->marginals[7], 0.0);  // untracked evidence: untouched
}

// Property: acceptance rate decreases monotonically (roughly) with the
// magnitude of the distribution change — the "amount of change" axis of
// Figure 5(b).
TEST(IndependentMHTest, AcceptanceDecreasesWithChangeMagnitude) {
  double last_rate = 1.1;
  for (double dw : {0.0, 0.8, 2.5}) {
    FactorGraph g = ChainGraph(21, 8);
    SampleStore store = MaterializeSamples(g, 2000, 17);
    GraphDelta delta;
    if (dw > 0) {
      for (VarId v = 0; v < 4; ++v) {
        delta.new_groups.push_back(
            g.AddSimpleFactor(v, {}, g.AddWeight(dw, false)));
      }
    }
    IndependentMH mh(&g, &delta);
    MHOptions options;
    options.target_steps = 2000;
    auto result = mh.Run(&store, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->acceptance_rate, last_rate + 0.02);
    last_rate = result->acceptance_rate;
  }
  EXPECT_LT(last_rate, 0.7);
}

}  // namespace
}  // namespace deepdive::incremental
