// End-to-end serving stack over real sockets: srv::Server hosting the
// handler tier, comm::Client speaking the framed wire protocol. Covers the
// full verb set, byte-identity of wire exports vs in-process dispatch,
// hostile-frame handling, concurrent client fleets, the shutdown-verb
// callback, and Stop() with live connections (no hangs, no leaked workers —
// the ASan/TSan CI jobs run this file too).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/comm/client.h"
#include "serve/comm/frame.h"
#include "serve/comm/messages.h"
#include "serve/handlers/handlers.h"
#include "serve/service/registry.h"
#include "serve/service/tenant.h"
#include "serve/srv/server.h"
#include "util/socket.h"
#include "util/thread_pool.h"

namespace deepdive::serve {
namespace {

constexpr char kVoteProgram[] = R"(
relation Endorses(src: int, dst: int).
query relation Trusted(p: int).
evidence TrustedLabel(p: int, l: bool) for Trusted.
rule CAND: Trusted(p) :- Endorses(s, p).
factor FE: Trusted(p) :- Endorses(s, p) weight = w(s) semantics = ratio.
)";

comm::Request CreateVoteRequest(const std::string& name) {
  comm::CreateTenantRequest create;
  create.name = name;
  create.program = kVoteProgram;
  create.config.epochs = 5;
  create.data.push_back({"Endorses", "1\t100\n2\t100\n3\t200\n"});
  create.data.push_back({"TrustedLabel", "100\ttrue\n"});
  comm::Request request;
  request.tenant = name;
  request.body = std::move(create);
  return request;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dispatcher_ = std::make_unique<handlers::Dispatcher>(&registry_);
    srv::ServerOptions options;
    options.listen_address = "127.0.0.1:0";
    options.connection_workers = 4;
    server_ = std::make_unique<srv::Server>(dispatcher_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    registry_.StopAll();
  }

  StatusOr<comm::Response> Call(const comm::Request& request) {
    DD_ASSIGN_OR_RETURN(comm::Client client,
                        comm::Client::Dial(server_->address()));
    return client.Call(request);
  }

  service::TenantRegistry registry_;
  std::unique_ptr<handlers::Dispatcher> dispatcher_;
  std::unique_ptr<srv::Server> server_;
};

TEST_F(ServerTest, FullVerbSetOverTheWire) {
  // create_tenant
  auto created = Call(CreateVoteRequest("vote"));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_TRUE(created->ok()) << created->message;
  const auto& info = std::get<comm::CreateTenantResult>(created->body);
  EXPECT_EQ(info.epoch, 1u);
  EXPECT_EQ(info.num_variables, 2u);  // Trusted(100), Trusted(200)

  // list_tenants
  comm::Request list;
  list.body = comm::ListTenantsRequest{};
  auto listed = Call(list);
  ASSERT_TRUE(listed.ok() && listed->ok());
  EXPECT_EQ(std::get<comm::ListTenantsResult>(listed->body).names,
            std::vector<std::string>{"vote"});

  // query: relation-level, then tuple-level
  comm::Request query;
  query.tenant = "vote";
  query.body = comm::QueryRequest{"Trusted", "", 0.0};
  auto relation_answer = Call(query);
  ASSERT_TRUE(relation_answer.ok() && relation_answer->ok());
  EXPECT_EQ(std::get<comm::QueryResult>(relation_answer->body).entries, 2u);
  query.body = comm::QueryRequest{"Trusted", "100", 0.0};
  auto tuple_answer = Call(query);
  ASSERT_TRUE(tuple_answer.ok() && tuple_answer->ok());
  const auto& tuple_result = std::get<comm::QueryResult>(tuple_answer->body);
  EXPECT_TRUE(tuple_result.found);
  EXPECT_GT(tuple_result.marginal, 0.9);  // evidence-true variable

  // apply_update: one epoch forward, over the wire
  comm::Request update;
  update.tenant = "vote";
  comm::UpdateRequest update_body;
  update_body.label = "wire-update";
  update_body.inserts.push_back({"Endorses", "4\t300\n"});
  update.body = std::move(update_body);
  auto applied = Call(update);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_TRUE(applied->ok()) << applied->message;
  const auto& report = std::get<comm::UpdateResult>(applied->body);
  EXPECT_EQ(report.epoch, 2u);
  EXPECT_EQ(report.label, "wire-update");

  // status reflects the update
  comm::Request status;
  status.tenant = "vote";
  status.body = comm::StatusRequest{};
  auto stats = Call(status);
  ASSERT_TRUE(stats.ok() && stats->ok());
  const auto& tenants = std::get<comm::StatusResult>(stats->body).tenants;
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0].epoch, 2u);
  EXPECT_EQ(tenants[0].updates_applied, 1u);
  EXPECT_TRUE(tenants[0].ready);

  // export over the wire is byte-identical to the in-process handler path —
  // the no-protocol-drift guarantee the CLI's run mode depends on.
  comm::Request export_request;
  export_request.tenant = "vote";
  export_request.body = comm::ExportRequest{{}, 0.0};
  auto wire_export = Call(export_request);
  ASSERT_TRUE(wire_export.ok() && wire_export->ok());
  const comm::Response in_process = dispatcher_->Dispatch(export_request);
  ASSERT_TRUE(in_process.ok());
  const auto& wire_chunks = std::get<comm::ExportResult>(wire_export->body);
  const auto& local_chunks = std::get<comm::ExportResult>(in_process.body);
  ASSERT_EQ(wire_chunks.chunks.size(), local_chunks.chunks.size());
  for (size_t i = 0; i < wire_chunks.chunks.size(); ++i) {
    EXPECT_EQ(wire_chunks.chunks[i].relation, local_chunks.chunks[i].relation);
    EXPECT_EQ(wire_chunks.chunks[i].tsv, local_chunks.chunks[i].tsv);
  }
}

TEST_F(ServerTest, ErrorsTravelAsResponses) {
  // Unknown tenant: a clean NotFound response, connection stays usable.
  auto client = comm::Client::Dial(server_->address());
  ASSERT_TRUE(client.ok());
  comm::Request query;
  query.tenant = "ghost";
  query.body = comm::QueryRequest{"Trusted", "", 0.0};
  auto response = client->Call(query);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kNotFound);

  // Same connection, next request still answered.
  comm::Request list;
  list.body = comm::ListTenantsRequest{};
  auto listed = client->Call(list);
  ASSERT_TRUE(listed.ok());
  EXPECT_TRUE(listed->ok());

  // Missing required field: InvalidArgument, not a dropped connection.
  query.tenant = "";
  query.body = comm::QueryRequest{"", "", 0.0};
  auto invalid = client->Call(query);
  ASSERT_TRUE(invalid.ok());
  EXPECT_EQ(invalid->code, StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, MalformedFrameGetsErrorResponse) {
  auto connected = Connect(server_->address());
  ASSERT_TRUE(connected.ok());
  const Socket& raw = *connected;
  // A frame whose payload is not a decodable request.
  ASSERT_TRUE(comm::WriteFrame(raw, "\xff\xffgarbage").ok());
  std::string payload;
  ASSERT_TRUE(comm::ReadFrame(raw, &payload).ok());
  auto response = comm::DecodeResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok());
}

TEST_F(ServerTest, ConcurrentClientsShareOneTenant) {
  auto created = Call(CreateVoteRequest("vote"));
  ASSERT_TRUE(created.ok() && created->ok());

  constexpr size_t kClients = 8;
  constexpr size_t kCallsPerClient = 10;
  std::vector<Status> outcomes(kClients, Status::OK());
  ThreadPool fleet(kClients, /*inline_when_single=*/false);
  for (size_t c = 0; c < kClients; ++c) {
    fleet.Submit([this, c, &outcomes] {
      // One connection per thread, as the comm::Client contract requires.
      auto client = comm::Client::Dial(server_->address());
      if (!client.ok()) {
        outcomes[c] = client.status();
        return;
      }
      for (size_t i = 0; i < kCallsPerClient; ++i) {
        comm::Request query;
        query.tenant = "vote";
        query.body = comm::QueryRequest{"Trusted", "", 0.0};
        auto response = client->Call(query);
        if (!response.ok()) {
          outcomes[c] = response.status();
          return;
        }
        if (!response->ok()) {
          outcomes[c] = response->ToStatus();
          return;
        }
        const auto& result = std::get<comm::QueryResult>(response->body);
        if (result.epoch < 1) {
          outcomes[c] = Status::Internal("epoch went backwards");
          return;
        }
      }
    });
  }
  fleet.Wait();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(outcomes[c].ok()) << "client " << c << ": "
                                  << outcomes[c].ToString();
  }
}

TEST_F(ServerTest, ShutdownVerbFiresCallbackAndAnswers) {
  bool drained = false;
  dispatcher_->SetShutdownCallback([&drained] { drained = true; });
  comm::Request shutdown;
  shutdown.body = comm::ShutdownRequest{};
  auto response = Call(shutdown);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok());
  EXPECT_TRUE(drained);
}

TEST_F(ServerTest, StopWithLiveConnectionsDoesNotHang) {
  // Park several connected-but-idle clients, then Stop(): the server must
  // wake its blocked readers and join every worker (the test would time out
  // otherwise; ASan would flag leaked threads).
  std::vector<StatusOr<comm::Client>> parked;
  for (int i = 0; i < 3; ++i) {
    parked.push_back(comm::Client::Dial(server_->address()));
    ASSERT_TRUE(parked.back().ok());
  }
  server_->Stop();
  server_->Stop();  // idempotent
  // New connections are refused or immediately closed after Stop.
  comm::Request list;
  list.body = comm::ListTenantsRequest{};
  auto dead = Call(list);
  EXPECT_FALSE(dead.ok());
}

TEST(ServerStandaloneTest, StartOnBusyPortFailsCleanly) {
  service::TenantRegistry registry;
  handlers::Dispatcher dispatcher(&registry);
  srv::ServerOptions options;
  options.listen_address = "127.0.0.1:0";
  srv::Server first(&dispatcher, options);
  ASSERT_TRUE(first.Start().ok());
  // Second server on the same concrete port must fail Start, not crash.
  srv::ServerOptions clash;
  clash.listen_address = first.address();
  srv::Server second(&dispatcher, clash);
  EXPECT_FALSE(second.Start().ok());
  first.Stop();
}

}  // namespace
}  // namespace deepdive::serve
