#include <gtest/gtest.h>

#include <algorithm>

#include "factor/factor_graph.h"
#include "util/random.h"
#include "incremental/decomposition.h"

namespace deepdive::incremental {
namespace {

using factor::FactorGraph;
using factor::VarId;
using factor::WeightId;

/// v0-v1-v2-v3-v4 chain (pairwise factors).
FactorGraph Chain(size_t n) {
  FactorGraph g;
  g.AddVariables(n);
  const WeightId w = g.AddWeight(1.0, false);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddSimpleFactor(static_cast<VarId>(i), {{static_cast<VarId>(i + 1), false}}, w);
  }
  return g;
}

TEST(ConnectedComponentsTest, SingleChain) {
  FactorGraph g = Chain(5);
  auto comps = ConnectedComponents(g);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 5u);
}

TEST(ConnectedComponentsTest, DisconnectedPieces) {
  FactorGraph g;
  g.AddVariables(6);
  const WeightId w = g.AddWeight(1.0, false);
  g.AddSimpleFactor(0, {{1, false}}, w);
  g.AddSimpleFactor(3, {{4, false}}, w);
  auto comps = ConnectedComponents(g);
  // {0,1}, {2}, {3,4}, {5}.
  EXPECT_EQ(comps.size(), 4u);
}

TEST(DecompositionTest, ActiveVariableCutsChain) {
  // Chain 0-1-2-3-4 with 2 active: components {0,1} and {3,4}, both with
  // boundary {2}; the merge rule (|A_j ∪ A_k| == max) combines them.
  FactorGraph g = Chain(5);
  std::vector<bool> active(5, false);
  active[2] = true;
  auto groups = DecomposeWithInactive(g, active);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].inactive.size(), 4u);
  EXPECT_EQ(groups[0].active, (std::vector<VarId>{2}));
}

TEST(DecompositionTest, DisjointBoundariesStaySeparate) {
  // Two chains with different active boundaries must not merge:
  // 0-1-2 (active 2) and 3-4-5 (active 5) -> boundaries {2} and {5}.
  FactorGraph g;
  g.AddVariables(6);
  const WeightId w = g.AddWeight(1.0, false);
  g.AddSimpleFactor(0, {{1, false}}, w);
  g.AddSimpleFactor(1, {{2, false}}, w);
  g.AddSimpleFactor(3, {{4, false}}, w);
  g.AddSimpleFactor(4, {{5, false}}, w);
  std::vector<bool> active(6, false);
  active[2] = true;
  active[5] = true;
  auto groups = DecomposeWithInactive(g, active);
  ASSERT_EQ(groups.size(), 2u);
}

TEST(DecompositionTest, NestedBoundariesMerge) {
  // Star: active hub 0 touches inactive 1, 2, 3 -> three singleton
  // components all with boundary {0}; they merge into one group.
  FactorGraph g;
  g.AddVariables(4);
  const WeightId w = g.AddWeight(1.0, false);
  for (VarId v = 1; v <= 3; ++v) g.AddSimpleFactor(v, {{0, false}}, w);
  std::vector<bool> active(4, false);
  active[0] = true;
  auto groups = DecomposeWithInactive(g, active);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].inactive.size(), 3u);
  EXPECT_EQ(groups[0].active, (std::vector<VarId>{0}));
}

TEST(DecompositionTest, AllActiveYieldsNoGroups) {
  FactorGraph g = Chain(4);
  std::vector<bool> active(4, true);
  EXPECT_TRUE(DecomposeWithInactive(g, active).empty());
}

TEST(DecompositionTest, NoActiveYieldsComponents) {
  FactorGraph g;
  g.AddVariables(4);
  const WeightId w = g.AddWeight(1.0, false);
  g.AddSimpleFactor(0, {{1, false}}, w);
  g.AddSimpleFactor(2, {{3, false}}, w);
  std::vector<bool> active(4, false);
  auto groups = DecomposeWithInactive(g, active);
  ASSERT_EQ(groups.size(), 2u);
  for (const auto& grp : groups) EXPECT_TRUE(grp.active.empty());
}

// Property: Algorithm 2's guarantee — conditioned on its active boundary,
// each group's inactive variables are independent of all other inactive
// variables. Structurally: no factor connects inactive variables of two
// different groups.
class DecompositionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecompositionProperty, GroupsAreConditionallyIndependent) {
  Rng rng(GetParam());
  FactorGraph g;
  const size_t n = 12 + rng.UniformInt(12);
  g.AddVariables(n);
  const WeightId w = g.AddWeight(1.0, false);
  const size_t factors = n + rng.UniformInt(n);
  for (size_t i = 0; i < factors; ++i) {
    const VarId a = static_cast<VarId>(rng.UniformInt(n));
    const VarId b = static_cast<VarId>(rng.UniformInt(n));
    if (a != b) g.AddSimpleFactor(a, {{b, false}}, w);
  }
  std::vector<bool> active(n, false);
  for (VarId v = 0; v < n; ++v) active[v] = rng.Bernoulli(0.3);

  const auto groups = DecomposeWithInactive(g, active);

  // Map inactive var -> group index.
  std::vector<int> group_of(n, -1);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (VarId v : groups[gi].inactive) {
      ASSERT_FALSE(active[v]);
      ASSERT_EQ(group_of[v], -1) << "groups must partition inactive vars";
      group_of[v] = static_cast<int>(gi);
    }
  }
  for (VarId v = 0; v < n; ++v) {
    if (!active[v]) ASSERT_NE(group_of[v], -1) << "inactive var " << v << " unassigned";
  }

  // No edge connects inactive vars of two different groups, and every
  // active neighbor of a group's inactive vars is in its boundary.
  for (VarId v = 0; v < n; ++v) {
    if (active[v]) continue;
    for (VarId u : g.Neighbors(v)) {
      if (active[u]) {
        const auto& boundary = groups[group_of[v]].active;
        EXPECT_TRUE(std::find(boundary.begin(), boundary.end(), u) != boundary.end())
            << "active neighbor " << u << " missing from boundary of group "
            << group_of[v];
      } else {
        EXPECT_EQ(group_of[v], group_of[u])
            << "inactive vars " << v << " and " << u
            << " share a factor but live in different groups";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionProperty,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38, 39, 40));

TEST(DecompositionTest, GroupsPartitionInactiveVariables) {
  FactorGraph g = Chain(9);
  std::vector<bool> active(9, false);
  active[3] = true;
  active[6] = true;
  auto groups = DecomposeWithInactive(g, active);
  std::vector<bool> seen(9, false);
  size_t total = 0;
  for (const auto& grp : groups) {
    for (VarId v : grp.inactive) {
      EXPECT_FALSE(seen[v]);
      EXPECT_FALSE(active[v]);
      seen[v] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, 7u);
}

}  // namespace
}  // namespace deepdive::incremental
