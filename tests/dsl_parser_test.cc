#include <gtest/gtest.h>

#include "dsl/parser.h"

namespace deepdive::dsl {
namespace {

TEST(ParserTest, RelationDecl) {
  auto ast = ParseProgram("relation R(a: int, b: string).");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->relations.size(), 1u);
  EXPECT_EQ(ast->relations[0].name, "R");
  EXPECT_EQ(ast->relations[0].kind, RelationKind::kBase);
  EXPECT_EQ(ast->relations[0].schema.arity(), 2u);
  EXPECT_EQ(ast->relations[0].schema.column(1).type, ValueType::kString);
}

TEST(ParserTest, QueryRelationDecl) {
  auto ast = ParseProgram("query relation Q(x: int).");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->relations[0].kind, RelationKind::kQuery);
}

TEST(ParserTest, EvidenceDecl) {
  auto ast = ParseProgram("evidence E(x: int, l: bool) for Q.");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->relations[0].kind, RelationKind::kEvidence);
  EXPECT_EQ(ast->relations[0].evidence_for, "Q");
}

TEST(ParserTest, ZeroArityRelation) {
  auto ast = ParseProgram("query relation Q().");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->relations[0].schema.arity(), 0u);
}

TEST(ParserTest, DeductiveRuleWithLabelAndCondition) {
  auto ast = ParseProgram(
      "rule R1: Married(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->deductive_rules.size(), 1u);
  const DeductiveRule& r = ast->deductive_rules[0];
  EXPECT_EQ(r.label, "R1");
  EXPECT_EQ(r.head.predicate, "Married");
  EXPECT_EQ(r.body.size(), 2u);
  ASSERT_EQ(r.conditions.size(), 1u);
  EXPECT_EQ(r.conditions[0].op, CompareOp::kNe);
}

TEST(ParserTest, RuleWithoutLabel) {
  auto ast = ParseProgram("rule H(x) :- B(x).");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast->deductive_rules[0].label.empty());
}

TEST(ParserTest, ConstantsInAtoms) {
  auto ast = ParseProgram("rule E(m, true) :- C(m, 3, \"str\", 2.5, false).");
  ASSERT_TRUE(ast.ok());
  const DeductiveRule& r = ast->deductive_rules[0];
  EXPECT_EQ(r.head.terms[1].constant, Value(true));
  EXPECT_EQ(r.body[0].terms[1].constant, Value(3));
  EXPECT_EQ(r.body[0].terms[2].constant, Value("str"));
  EXPECT_EQ(r.body[0].terms[3].constant, Value(2.5));
  EXPECT_EQ(r.body[0].terms[4].constant, Value(false));
}

TEST(ParserTest, NegatedAtom) {
  auto ast = ParseProgram("rule H(x) :- B(x), !C(x).");
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(ast->deductive_rules[0].body[0].negated);
  EXPECT_TRUE(ast->deductive_rules[0].body[1].negated);
}

TEST(ParserTest, FactorRuleFixedWeight) {
  auto ast = ParseProgram("factor F: Q(x) :- R(x) weight = -1.5.");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->factor_rules.size(), 1u);
  EXPECT_EQ(ast->factor_rules[0].weight.kind, WeightSpec::Kind::kFixed);
  EXPECT_DOUBLE_EQ(ast->factor_rules[0].weight.fixed_value, -1.5);
  EXPECT_FALSE(ast->factor_rules[0].weight.learnable);
  EXPECT_EQ(ast->factor_rules[0].semantics, Semantics::kLinear);
}

TEST(ParserTest, FactorRuleLearnableWeight) {
  auto ast = ParseProgram("factor Q(x) :- R(x) weight = ?.");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast->factor_rules[0].weight.learnable);
}

TEST(ParserTest, FactorRuleTiedWeightAndSemantics) {
  auto ast = ParseProgram("factor Q(x) :- R(x, f) weight = w(f) semantics = ratio.");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const FactorRule& r = ast->factor_rules[0];
  EXPECT_EQ(r.weight.kind, WeightSpec::Kind::kTied);
  EXPECT_EQ(r.weight.tied_vars, (std::vector<std::string>{"f"}));
  EXPECT_TRUE(r.weight.learnable);
  EXPECT_EQ(r.semantics, Semantics::kRatio);
}

TEST(ParserTest, AllSemantics) {
  for (const char* sem : {"linear", "ratio", "logical"}) {
    auto ast = ParseProgram(std::string("factor Q(x) :- R(x) weight = 1 semantics = ") +
                            sem + ".");
    ASSERT_TRUE(ast.ok()) << sem;
  }
  EXPECT_FALSE(ParseProgram("factor Q(x) :- R(x) weight = 1 semantics = bogus.").ok());
}

TEST(ParserTest, IntegerWeightParses) {
  auto ast = ParseProgram("factor Q(x) :- R(x) weight = 2.");
  ASSERT_TRUE(ast.ok());
  EXPECT_DOUBLE_EQ(ast->factor_rules[0].weight.fixed_value, 2.0);
}

TEST(ParserTest, MultiStatementProgram) {
  auto ast = ParseProgram(R"(
    # a comment
    relation R(x: int).
    query relation Q(x: int).
    rule Q(x) :- R(x).
    factor F: Q(x) :- R(x) weight = 0.5.
  )");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->relations.size(), 2u);
  EXPECT_EQ(ast->deductive_rules.size(), 1u);
  EXPECT_EQ(ast->factor_rules.size(), 1u);
}

TEST(ParserTest, ErrorsIncludePosition) {
  // ": -" lexes ':' then a stray '-' (lex error); "rule H(x) := ..." is a
  // parse error. Both must carry a position.
  auto lex_error = ParseProgram("rule H(x) : - B(x).");
  ASSERT_FALSE(lex_error.ok());
  EXPECT_NE(lex_error.status().message().find("error at"), std::string::npos);
  auto parse_error = ParseProgram("rule H(x) B(x).");
  ASSERT_FALSE(parse_error.ok());
  EXPECT_NE(parse_error.status().message().find("parse error"), std::string::npos);
}

TEST(ParserTest, MissingDotIsError) {
  EXPECT_FALSE(ParseProgram("relation R(x: int)").ok());
}

TEST(ParserTest, MissingWeightIsError) {
  EXPECT_FALSE(ParseProgram("factor Q(x) :- R(x).").ok());
}

TEST(ParserTest, UnknownTypeIsError) {
  EXPECT_FALSE(ParseProgram("relation R(x: float).").ok());
}

TEST(ParserTest, RoundTripToString) {
  auto ast = ParseProgram(
      "factor FE1: Q(m1, m2) :- C(m1, m2), F(m1, m2, f) weight = w(f) "
      "semantics = logical.");
  ASSERT_TRUE(ast.ok());
  const std::string s = FactorRuleToString(ast->factor_rules[0]);
  EXPECT_NE(s.find("FE1"), std::string::npos);
  EXPECT_NE(s.find("w(f)"), std::string::npos);
  EXPECT_NE(s.find("logical"), std::string::npos);
}

}  // namespace
}  // namespace deepdive::dsl
