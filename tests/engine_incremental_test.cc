#include <gtest/gtest.h>

#include "factor/factor_graph.h"
#include "incremental/engine.h"
#include "inference/exact.h"
#include "util/random.h"
#include "util/thread_role.h"

namespace deepdive::incremental {
namespace {

using factor::FactorGraph;
using factor::GraphDelta;
using factor::VarId;
using factor::WeightId;

FactorGraph TwoComponentGraph(uint64_t seed) {
  // Two disconnected 4-variable chains.
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(8);
  for (VarId base : {VarId{0}, VarId{4}}) {
    for (VarId i = 0; i < 3; ++i) {
      g.AddSimpleFactor(base + i, {{static_cast<VarId>(base + i + 1), false}},
                        g.AddWeight(rng.Uniform(-0.8, 0.8), false));
    }
  }
  for (VarId v = 0; v < 8; ++v) {
    g.AddSimpleFactor(v, {}, g.AddWeight(rng.Uniform(-0.3, 0.3), false));
  }
  return g;
}

MaterializationOptions TestMaterialization() {
  MaterializationOptions options;
  options.num_samples = 8000;
  options.gibbs_thin = 2;
  options.gibbs_burn_in = 100;
  options.variational.num_samples = 300;
  options.variational.fit_epochs = 150;
  options.variational.lambda = 0.05;
  return options;
}

EngineOptions TestEngine() {
  EngineOptions options;
  options.mh_target_steps = 3000;
  options.gibbs.burn_in_sweeps = 100;
  options.gibbs.sample_sweeps = 1500;
  return options;
}

TEST(IncrementalEngineTest, MaterializeProducesStatsAndMarginals) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(1);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());
  const auto& stats = engine.materialization_stats();
  EXPECT_EQ(stats.samples_collected, 8000u);
  EXPECT_GT(stats.sample_bytes, 0u);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_TRUE(engine.HasVariational());

  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(engine.marginals()[v], exact->marginals[v], 0.1);
  }
}

TEST(IncrementalEngineTest, EmptyDeltaUsesSamplingWithFullAcceptance) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(2);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());
  auto outcome = engine.ApplyDelta(GraphDelta{}, TestEngine());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->strategy, Strategy::kSampling);
  EXPECT_DOUBLE_EQ(outcome->acceptance_rate, 1.0);
  EXPECT_EQ(outcome->affected_vars, 0u);  // nothing touched
}

TEST(IncrementalEngineTest, StructuralDeltaMatchesExact) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(3);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());

  GraphDelta delta;
  delta.new_groups.push_back(
      g.AddSimpleFactor(1, {{2, false}}, g.AddWeight(0.9, /*learnable=*/true)));
  auto outcome = engine.ApplyDelta(delta, TestEngine());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->strategy, Strategy::kSampling);
  // Only the first component is affected.
  EXPECT_EQ(outcome->affected_vars, 4u);

  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(outcome->marginals[v], exact->marginals[v], 0.12) << "var " << v;
  }
}

TEST(IncrementalEngineTest, EvidenceDeltaUsesVariational) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(4);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());

  GraphDelta delta;
  g.SetEvidence(0, true);
  delta.evidence_changes.push_back({0, std::nullopt, true});
  auto outcome = engine.ApplyDelta(delta, TestEngine());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->strategy, Strategy::kVariational);
  EXPECT_DOUBLE_EQ(outcome->marginals[0], 1.0);

  // Evidence on a strongly coupled chain must drag its neighbor in the
  // right direction relative to the exact answer.
  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < 4; ++v) {
    EXPECT_NEAR(outcome->marginals[v], exact->marginals[v], 0.2) << "var " << v;
  }
}

TEST(IncrementalEngineTest, FallsBackToVariationalWhenSamplesExhausted) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(5);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  mopts.num_samples = 20;  // tiny store
  ASSERT_TRUE(engine.Materialize(mopts).ok());

  GraphDelta delta;
  // Large change: acceptance collapses, store drains immediately.
  for (VarId v = 0; v < 4; ++v) {
    delta.new_groups.push_back(g.AddSimpleFactor(v, {}, g.AddWeight(3.0, false)));
  }
  EngineOptions eopts = TestEngine();
  eopts.mh_target_steps = 2000;
  auto outcome = engine.ApplyDelta(delta, eopts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->fell_back_to_variational ||
              outcome->strategy == Strategy::kVariational);
}

TEST(IncrementalEngineTest, ForcedStrategyIsRespected) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(6);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());
  EngineOptions eopts = TestEngine();
  eopts.forced_strategy = Strategy::kRerun;
  auto outcome = engine.ApplyDelta(GraphDelta{}, eopts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->strategy, Strategy::kRerun);
}

TEST(IncrementalEngineTest, SuccessiveDeltasAccumulate) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(7);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());

  GraphDelta d1;
  d1.new_groups.push_back(
      g.AddSimpleFactor(0, {}, g.AddWeight(0.5, /*learnable=*/true)));
  ASSERT_TRUE(engine.ApplyDelta(d1, TestEngine()).ok());
  GraphDelta d2;
  d2.new_groups.push_back(
      g.AddSimpleFactor(5, {}, g.AddWeight(-0.5, /*learnable=*/true)));
  auto outcome = engine.ApplyDelta(d2, TestEngine());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(engine.cumulative_delta().new_groups.size(), 2u);
  // Both components are now affected by the cumulative delta.
  EXPECT_EQ(outcome->affected_vars, 8u);

  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(outcome->marginals[v], exact->marginals[v], 0.12) << "var " << v;
  }
}

TEST(IncrementalEngineTest, DecompositionDisabledTouchesEverything) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(8);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());
  GraphDelta delta;
  delta.new_groups.push_back(
      g.AddSimpleFactor(0, {}, g.AddWeight(0.3, /*learnable=*/true)));
  EngineOptions eopts = TestEngine();
  eopts.decomposition_enabled = false;
  auto outcome = engine.ApplyDelta(delta, eopts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->affected_vars, 8u);
}

TEST(IncrementalEngineTest, PerGroupStrategySplitsComponents) {
  deepdive::serving_thread.AssertHeld();
  // Component 1 gets new evidence (variational bucket); component 2 gets a
  // new feature factor (sampling bucket). Both sets of marginals must track
  // the exact posterior of the combined update.
  FactorGraph g = TwoComponentGraph(11);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());

  GraphDelta delta;
  g.SetEvidence(1, true);
  delta.evidence_changes.push_back({1, std::nullopt, true});
  delta.new_groups.push_back(
      g.AddSimpleFactor(5, {{6, false}}, g.AddWeight(0.7, /*learnable=*/true)));

  EngineOptions eopts = TestEngine();
  eopts.per_group_strategy = true;
  auto outcome = engine.ApplyDelta(delta, eopts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->variational_vars, 4u);  // the evidence component
  EXPECT_EQ(outcome->sampling_vars, 4u);     // the feature component
  EXPECT_NE(outcome->reason.find("per-group"), std::string::npos);
  EXPECT_DOUBLE_EQ(outcome->marginals[1], 1.0);

  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 4; v < 8; ++v) {
    // The sampling component's marginals track exactly.
    EXPECT_NEAR(outcome->marginals[v], exact->marginals[v], 0.12) << "var " << v;
  }
  for (VarId v = 0; v < 4; ++v) {
    // The variational component approximates.
    EXPECT_NEAR(outcome->marginals[v], exact->marginals[v], 0.2) << "var " << v;
  }
}

TEST(IncrementalEngineTest, PerGroupDisabledFallsBackToGlobalChoice) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(12);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());
  GraphDelta delta;
  g.SetEvidence(0, false);
  delta.evidence_changes.push_back({0, std::nullopt, false});
  EngineOptions eopts = TestEngine();
  eopts.per_group_strategy = false;
  auto outcome = engine.ApplyDelta(delta, eopts);
  ASSERT_TRUE(outcome.ok());
  // Global classification: evidence modified -> variational for everything.
  EXPECT_EQ(outcome->strategy, Strategy::kVariational);
  EXPECT_EQ(outcome->sampling_vars, 0u);
}

TEST(IncrementalEngineTest, TimeBudgetLimitsSampleCollection) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(9);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  mopts.num_samples = 100000000;  // absurd target
  mopts.time_budget_seconds = 0.05;
  ASSERT_TRUE(engine.Materialize(mopts).ok());
  EXPECT_LT(engine.materialization_stats().samples_collected, 100000000u);
  EXPECT_GT(engine.materialization_stats().samples_collected, 0u);
}

TEST(IncrementalEngineTest, TimeBudgetEnforcedDuringBurnIn) {
  deepdive::serving_thread.AssertHeld();
  // Regression: the budget used to be checked only between sample callbacks,
  // so a long burn-in could blow it before the first sample landed. A
  // burn-in this size takes minutes unchecked — the budget must cut it off.
  FactorGraph g = TwoComponentGraph(10);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = TestMaterialization();
  mopts.gibbs_burn_in = 2000000000;
  mopts.num_samples = 10;
  mopts.time_budget_seconds = 0.05;
  ASSERT_TRUE(engine.Materialize(mopts).ok());
  EXPECT_EQ(engine.materialization_stats().samples_collected, 0u);
  EXPECT_LT(engine.materialization_stats().seconds, 5.0);
}

TEST(IncrementalEngineTest, ComponentCacheTracksNewVariables) {
  deepdive::serving_thread.AssertHeld();
  // The connected-components cache must be invalidated by structural deltas:
  // a variable added after a cached computation has to show up in the
  // affected set of the update that introduces it.
  FactorGraph g = TwoComponentGraph(13);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());

  // Prime the cache with an evidence-only update (no structural change).
  GraphDelta d1;
  g.SetEvidence(4, true);
  d1.evidence_changes.push_back({4, std::nullopt, true});
  auto first = engine.ApplyDelta(d1, TestEngine());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->affected_vars, 4u);  // the second chain only

  // Structural update: a new variable attached to component one.
  GraphDelta d2;
  const VarId nv = g.AddVariable();
  d2.new_variables.push_back(nv);
  d2.new_groups.push_back(
      g.AddSimpleFactor(nv, {{0, false}}, g.AddWeight(1.2, /*learnable=*/true)));
  auto second = engine.ApplyDelta(d2, TestEngine());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Cumulative: evidence component (4 vars) + component one with its new
  // variable (5 vars). A stale component cache would miss the new variable.
  EXPECT_EQ(second->affected_vars, 9u);

  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(second->marginals[nv], exact->marginals[nv], 0.15);
}

TEST(IncrementalEngineTest, ComponentCacheReuseKeepsBucketsIdentical) {
  deepdive::serving_thread.AssertHeld();
  // Successive per-group updates must land in the same strategy buckets
  // whether the components came from the cache (evidence-only follow-up) or
  // a fresh computation (structural follow-up).
  FactorGraph g = TwoComponentGraph(14);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());

  GraphDelta d1;
  g.SetEvidence(1, true);
  d1.evidence_changes.push_back({1, std::nullopt, true});
  auto first = engine.ApplyDelta(d1, TestEngine());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->variational_vars, 4u);
  EXPECT_EQ(first->sampling_vars, 0u);

  // Cached components (no structural change since d1): same bucketing plus
  // the same component set.
  GraphDelta d2;
  g.SetEvidence(2, false);
  d2.evidence_changes.push_back({2, std::nullopt, false});
  auto second = engine.ApplyDelta(d2, TestEngine());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->variational_vars, 4u);
  EXPECT_EQ(second->sampling_vars, 0u);

  // Structural follow-up on the other component: fresh computation must
  // keep the evidence component variational and add the feature component
  // to the sampling bucket. A modest accepted-step target keeps the chain
  // inside the store despite the evidence changes rejecting many proposals.
  GraphDelta d3;
  d3.new_groups.push_back(
      g.AddSimpleFactor(5, {{6, false}}, g.AddWeight(0.7, true)));
  EngineOptions third_opts = TestEngine();
  third_opts.mh_target_steps = 800;
  auto third = engine.ApplyDelta(d3, third_opts);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->variational_vars, 4u);
  EXPECT_EQ(third->sampling_vars, 4u);

  auto exact = inference::ExactInference(g);
  ASSERT_TRUE(exact.ok());
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(third->marginals[v], exact->marginals[v], 0.2) << "var " << v;
  }
}

}  // namespace
}  // namespace deepdive::incremental
