// The versioned snapshot query API: ResultView/ResultPublisher semantics,
// Query() on DeepDive and IncrementalEngine, epoch plumbing through
// UpdateReport/UpdateOutcome, snapshot isolation of pinned views, and the
// concurrent reader/writer drill (N reader threads hammering Query() while
// the serving thread applies a stream of deltas and async remats swap
// snapshots). The concurrency-heavy cases also run under the
// ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deepdive.h"
#include "factor/factor_graph.h"
#include "incremental/engine.h"
#include "incremental/result_view.h"
#include "util/random.h"
#include "util/thread_role.h"

namespace deepdive {
namespace {

using core::DeepDive;
using core::DeepDiveConfig;
using incremental::UpdateReport;
using core::UpdateSpec;
using factor::FactorGraph;
using factor::GraphDelta;
using factor::VarId;
using incremental::EngineOptions;
using incremental::IncrementalEngine;
using incremental::MaterializationOptions;
using incremental::ResultPublisher;
using incremental::ResultView;

// ---------------------------------------------------------------------------
// ResultView / ResultPublisher unit semantics.
// ---------------------------------------------------------------------------

TEST(ResultPublisherTest, StartsWithCheckedEmptyEpochZeroView) {
  deepdive::serving_thread.AssertHeld();
  ResultPublisher publisher;
  const auto view = publisher.Current();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch, 0u);
  EXPECT_TRUE(view->marginals.empty());
  EXPECT_EQ(view->Fingerprint(), view->content_hash);
}

TEST(ResultPublisherTest, PublishStampsMonotoneEpochsAndChecksums) {
  deepdive::serving_thread.AssertHeld();
  ResultPublisher publisher;
  for (uint64_t i = 1; i <= 3; ++i) {
    auto view = std::make_shared<ResultView>();
    view->marginals = {0.25 * static_cast<double>(i), 0.5};
    EXPECT_EQ(publisher.next_epoch(), i);
    EXPECT_EQ(publisher.Publish(std::move(view)), i);
    const auto current = publisher.Current();
    EXPECT_EQ(current->epoch, i);
    EXPECT_EQ(current->Fingerprint(), current->content_hash);
    EXPECT_EQ(publisher.last_epoch(), i);
  }
  // Different (epoch, marginals) pairs checksum differently — the hash can
  // actually tell torn publications apart.
  auto a = std::make_shared<ResultView>();
  a->marginals = {0.75, 0.5};
  auto b = std::make_shared<ResultView>();
  b->marginals = {0.25, 0.5};
  publisher.Publish(a);
  const uint64_t hash_a = publisher.Current()->content_hash;
  publisher.Publish(b);
  EXPECT_NE(publisher.Current()->content_hash, hash_a);
}

TEST(ResultViewTest, MarginalLookupMatchesIndex) {
  deepdive::serving_thread.AssertHeld();
  ResultView view;
  view.marginals = {0.9, 0.1, 0.7};
  view.relations["R"] = {{{Value(1), Value(2)}, 0.9},
                         {{Value(2), Value(1)}, 0.1},
                         {{Value(3), Value(3)}, 0.7}};
  EXPECT_DOUBLE_EQ(view.MarginalOf("R", {Value(1), Value(2)}), 0.9);
  EXPECT_DOUBLE_EQ(view.MarginalOf("R", {Value(3), Value(3)}), 0.7);
  // Unknown tuple / relation: the 0.5 "unknown variable" convention.
  EXPECT_DOUBLE_EQ(view.MarginalOf("R", {Value(9), Value(9)}), 0.5);
  EXPECT_DOUBLE_EQ(view.MarginalOf("S", {Value(1), Value(2)}), 0.5);
  ASSERT_NE(view.Relation("R"), nullptr);
  EXPECT_EQ(view.Relation("R")->size(), 3u);
  EXPECT_EQ(view.Relation("S"), nullptr);
}

// ---------------------------------------------------------------------------
// DeepDive::Query semantics.
// ---------------------------------------------------------------------------

constexpr const char* kProgram = R"(
  relation Person(sent: int, mention: int).
  relation Phrase(m1: int, m2: int, words: string).
  query relation HasSpouse(m1: int, m2: int).
  evidence HasSpouseLabel(m1: int, m2: int, l: bool) for HasSpouse.
  rule CAND: HasSpouse(m1, m2) :-
    Person(s, m1), Person(s, m2), m1 != m2.
  factor FE1: HasSpouse(m1, m2) :- Phrase(m1, m2, w)
    weight = w(w) semantics = ratio.
)";

std::unique_ptr<DeepDive> MakeDeepDive(const DeepDiveConfig& config,
                                       size_t sentences = 3)
    REQUIRES(serving_thread) {
  auto dd = DeepDive::Create(kProgram, config);
  EXPECT_TRUE(dd.ok()) << dd.status().ToString();
  std::vector<Tuple> persons, phrases;
  for (size_t s = 1; s <= sentences; ++s) {
    const auto sent = static_cast<int64_t>(s);
    persons.push_back({Value(sent), Value(sent * 10)});
    persons.push_back({Value(sent), Value(sent * 10 + 1)});
    phrases.push_back({Value(sent * 10), Value(sent * 10 + 1),
                       Value(s % 2 ? "and his wife" : "met with")});
  }
  EXPECT_TRUE((*dd)->LoadRows("Person", persons).ok());
  EXPECT_TRUE((*dd)->LoadRows("Phrase", phrases).ok());
  EXPECT_TRUE((*dd)
                  ->LoadRows("HasSpouseLabel",
                             {{Value(10), Value(11), Value(true)}})
                  .ok());
  return std::move(dd).value();
}

TEST(DeepDiveQueryTest, QueryIsEmptyEpochZeroBeforeInitialize) {
  deepdive::serving_thread.AssertHeld();
  auto dd = MakeDeepDive(core::FastTestConfig());
  const auto view = dd->Query();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch, 0u);
  EXPECT_DOUBLE_EQ(dd->MarginalOf("HasSpouse", {Value(10), Value(11)}), 0.5);
}

TEST(DeepDiveQueryTest, InitializePublishesAndLegacyAccessorsMatchView) {
  deepdive::serving_thread.AssertHeld();
  auto dd = MakeDeepDive(core::FastTestConfig());
  ASSERT_TRUE(dd->Initialize().ok());

  const auto view = dd->Query();
  EXPECT_EQ(view->epoch, 1u);
  EXPECT_EQ(view->report.label, "initialize");
  EXPECT_EQ(view->report.epoch, 1u);
  EXPECT_EQ(view->Fingerprint(), view->content_hash);
  EXPECT_GT(view->snapshot_generation, 0u);  // incremental mode materialized
  EXPECT_GT(view->materialization.samples_collected, 0u);
  ASSERT_NE(view->materialized_marginals, nullptr);

  // The legacy accessors are the view, by construction.
  EXPECT_EQ(&dd->marginal_vector(), &view->marginals);
  const auto pairs = dd->Marginals("HasSpouse");
  const auto* entries = view->Relation("HasSpouse");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(pairs.size(), entries->size());
  EXPECT_FALSE(pairs.empty());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].first, (*entries)[i].first);
    EXPECT_DOUBLE_EQ(pairs[i].second, (*entries)[i].second);
    EXPECT_DOUBLE_EQ(dd->MarginalOf("HasSpouse", pairs[i].first),
                     view->MarginalOf("HasSpouse", pairs[i].first));
  }
}

TEST(DeepDiveQueryTest, PinnedViewSurvivesUpdateUnchanged) {
  deepdive::serving_thread.AssertHeld();
  auto dd = MakeDeepDive(core::FastTestConfig());
  ASSERT_TRUE(dd->Initialize().ok());

  const auto before = dd->Query();
  const std::vector<double> before_marginals = before->marginals;
  const uint64_t before_epoch = before->epoch;

  // New sentence + feature + a second spouse label: marginals move.
  UpdateSpec update;
  update.label = "U1";
  update.inserts["Person"] = {{Value(9), Value(90)}, {Value(9), Value(91)}};
  update.inserts["Phrase"] = {{Value(90), Value(91), Value("and his wife")}};
  auto report = dd->ApplyUpdate(update);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->epoch, 2u);

  // Snapshot isolation: the pinned view still reads its original epoch's
  // marginals, bit for bit.
  EXPECT_EQ(before->epoch, before_epoch);
  EXPECT_EQ(before->marginals, before_marginals);
  EXPECT_EQ(before->Fingerprint(), before->content_hash);
  // The new pair exists at epoch 2 but not in the pinned epoch-1 view.
  EXPECT_DOUBLE_EQ(before->MarginalOf("HasSpouse", {Value(90), Value(91)}), 0.5);
  const auto after = dd->Query();
  EXPECT_EQ(after->epoch, 2u);
  EXPECT_EQ(after->report.label, "U1");
  EXPECT_NE(after->MarginalOf("HasSpouse", {Value(90), Value(91)}), 0.5);
}

TEST(DeepDiveQueryTest, HistoryEpochsAreStrictlyIncreasing) {
  deepdive::serving_thread.AssertHeld();
  auto dd = MakeDeepDive(core::FastTestConfig());
  ASSERT_TRUE(dd->Initialize().ok());
  for (int u = 0; u < 3; ++u) {
    UpdateSpec update;
    update.label = "A" + std::to_string(u);
    update.analysis_only = true;
    ASSERT_TRUE(dd->ApplyUpdate(update).ok());
  }
  ASSERT_EQ(dd->history().size(), 3u);
  uint64_t last = 1;  // epoch 1 was Initialize
  for (const UpdateReport& report : dd->history()) {
    EXPECT_EQ(report.epoch, last + 1);
    last = report.epoch;
  }
  EXPECT_EQ(dd->Query()->epoch, last);
  EXPECT_EQ(dd->Query()->report.label, "A2");
}

TEST(DeepDiveQueryTest, RerunModePublishesViewsToo) {
  deepdive::serving_thread.AssertHeld();
  DeepDiveConfig config = core::FastTestConfig();
  config.mode = core::ExecutionMode::kRerun;
  auto dd = MakeDeepDive(config);
  ASSERT_TRUE(dd->Initialize().ok());
  const auto view = dd->Query();
  EXPECT_EQ(view->epoch, 1u);
  EXPECT_EQ(view->snapshot_generation, 0u);  // no materialization in Rerun
  EXPECT_EQ(view->materialized_marginals, nullptr);
  UpdateSpec update;
  update.label = "U1";
  update.inserts["Phrase"] = {{Value(20), Value(21), Value("wed")}};
  auto report = dd->ApplyUpdate(update);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->epoch, 2u);
  EXPECT_EQ(dd->Query()->epoch, 2u);
}

// ---------------------------------------------------------------------------
// IncrementalEngine::Query semantics.
// ---------------------------------------------------------------------------

FactorGraph TwoComponentGraph(uint64_t seed) {
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(8);
  for (VarId base : {VarId{0}, VarId{4}}) {
    for (VarId i = 0; i < 3; ++i) {
      g.AddSimpleFactor(base + i, {{static_cast<VarId>(base + i + 1), false}},
                        g.AddWeight(rng.Uniform(-0.8, 0.8), false));
    }
  }
  for (VarId v = 0; v < 8; ++v) {
    g.AddSimpleFactor(v, {}, g.AddWeight(rng.Uniform(-0.3, 0.3), false));
  }
  return g;
}

MaterializationOptions TestMaterialization() {
  MaterializationOptions options;
  options.num_samples = 1000;
  options.gibbs_burn_in = 50;
  options.variational.num_samples = 200;
  options.variational.fit_epochs = 100;
  options.remat_on_exhaustion = false;
  return options;
}

EngineOptions TestEngine() {
  EngineOptions options;
  options.mh_target_steps = 500;
  options.gibbs.burn_in_sweeps = 50;
  options.gibbs.sample_sweeps = 500;
  return options;
}

GraphDelta AddFeatureFactor(FactorGraph* g, VarId head, VarId body, double w) {
  GraphDelta delta;
  delta.new_groups.push_back(
      g->AddSimpleFactor(head, {{body, false}}, g->AddWeight(w, /*learnable=*/true)));
  return delta;
}

TEST(EngineQueryTest, OutcomesCarryEpochsAndViewsTrackInstalls) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(41);
  IncrementalEngine engine(&g);
  // Construction publishes the empty pre-materialization state.
  const auto initial = engine.Query();
  ASSERT_NE(initial, nullptr);
  EXPECT_EQ(initial->epoch, 1u);
  EXPECT_EQ(initial->snapshot_generation, 0u);

  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());
  const auto materialized = engine.Query();
  EXPECT_GT(materialized->epoch, initial->epoch);
  EXPECT_EQ(materialized->snapshot_generation, 1u);
  EXPECT_EQ(materialized->materialization.samples_collected, 1000u);
  ASSERT_NE(materialized->materialized_marginals, nullptr);

  auto outcome = engine.ApplyDelta(AddFeatureFactor(&g, 1, 2, 0.5), TestEngine());
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->epoch, materialized->epoch);
  const auto after = engine.Query();
  EXPECT_EQ(after->epoch, outcome->epoch);
  EXPECT_EQ(after->marginals, outcome->marginals);
  EXPECT_EQ(after->report.strategy, outcome->strategy);
  EXPECT_EQ(after->report.epoch, outcome->epoch);
}

TEST(EngineQueryTest, PinnedViewKeepsRetiredSnapshotAlive) {
  deepdive::serving_thread.AssertHeld();
  FactorGraph g = TwoComponentGraph(42);
  IncrementalEngine engine(&g);
  ASSERT_TRUE(engine.Materialize(TestMaterialization()).ok());

  const auto pinned = engine.Query();
  ASSERT_NE(pinned->materialized_marginals, nullptr);
  const std::vector<double> pr0 = *pinned->materialized_marginals;
  const auto stats = pinned->materialization;

  // Rematerialize with a different seed: the engine swaps snapshots and the
  // old one is retired — but the pinned view still reads the old Pr(0)
  // marginals and stats (this used to be the dangling-reference hazard on
  // materialization_stats()/materialized_marginals()).
  MaterializationOptions remat = TestMaterialization();
  remat.seed = 777;
  remat.num_samples = 500;
  ASSERT_TRUE(engine.Materialize(remat).ok());
  EXPECT_EQ(engine.snapshot_generation(), 2u);
  EXPECT_EQ(engine.materialization_stats().samples_collected, 500u);

  EXPECT_EQ(*pinned->materialized_marginals, pr0);
  EXPECT_EQ(pinned->materialization.samples_collected, stats.samples_collected);
  EXPECT_EQ(pinned->snapshot_generation, 1u);
  // And the serving accessors moved on to the new snapshot.
  EXPECT_EQ(engine.Query()->snapshot_generation, 2u);
}

// ---------------------------------------------------------------------------
// The concurrent reader/writer drill (also a TSan target): N reader threads
// hammer Query() on both the DeepDive and its engine while the serving
// thread applies a stream of updates and self-scheduled background remats
// swap snapshots underneath.
// ---------------------------------------------------------------------------

TEST(ConcurrentQueryTest, ReadersSeeConsistentViewsWhileUpdatesStream) {
  deepdive::serving_thread.AssertHeld();
  DeepDiveConfig config = core::FastTestConfig();
  config.materialization.num_samples = 300;
  config.materialization.gibbs_burn_in = 10;
  config.materialization.variational.num_samples = 40;
  config.materialization.variational.fit_epochs = 15;
  config.materialization.async = true;
  config.materialization.remat_after_updates = 2;  // force swaps mid-stream
  config.engine.mh_target_steps = 60;
  config.engine.gibbs.burn_in_sweeps = 5;
  config.engine.gibbs.sample_sweeps = 80;
  config.engine.rerun_gibbs.burn_in_sweeps = 5;
  config.engine.rerun_gibbs.sample_sweeps = 80;
  auto dd = MakeDeepDive(config, /*sentences=*/4);
  ASSERT_TRUE(dd->Initialize().ok());

  constexpr size_t kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::atomic<uint64_t> total_queries{0};
  // The engine pointer is pinned here, on the serving thread, because
  // incremental_engine() is a REQUIRES(serving_thread) accessor — readers
  // get the stable pointer and use only the capability-free Query() surface.
  incremental::IncrementalEngine* engine = dd->incremental_engine();
  // lint:allow(raw-thread) reader threads are the subject under test — they
  // must be plain threads hammering Query(), not ThreadPool tasks.
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      uint64_t last_dd_epoch = 0;
      uint64_t last_engine_epoch = 0;
      uint64_t queries = 0;
      // ordering: relaxed — quit hint polled between queries; the join below
      // is the synchronization point for the tallies.
      while (!stop.load(std::memory_order_relaxed)) {
        const auto view = dd->Query();
        const auto engine_view = engine->Query();
        // Internal consistency: the epoch matches the marginal vector it
        // was published with (checksum), values are probabilities, and the
        // relation index answers its own entries.
        if (view->Fingerprint() != view->content_hash ||
            engine_view->Fingerprint() != engine_view->content_hash) {
          violation.store(true);
          break;
        }
        if (view->epoch < last_dd_epoch ||
            engine_view->epoch < last_engine_epoch) {
          violation.store(true);  // epochs must be monotone per reader
          break;
        }
        last_dd_epoch = view->epoch;
        last_engine_epoch = engine_view->epoch;
        bool ok = true;
        for (const double m : view->marginals) {
          ok &= m >= 0.0 && m <= 1.0;
        }
        const auto* entries = view->Relation("HasSpouse");
        if (entries != nullptr && !entries->empty()) {
          const auto& probe = (*entries)[queries % entries->size()];
          ok &= view->MarginalOf("HasSpouse", probe.first) == probe.second;
        }
        if (engine_view->materialized_marginals != nullptr) {
          // Reading the pinned snapshot's Pr(0) marginals must stay safe
          // across swaps (it keeps the retired snapshot alive).
          for (const double m : *engine_view->materialized_marginals) {
            ok &= m >= 0.0 && m <= 1.0;
          }
        }
        if (!ok) {
          violation.store(true);
          break;
        }
        ++queries;
      }
      total_queries.fetch_add(queries);
    });
  }

  // The update stream: data inserts (structural deltas), a rule update, and
  // analysis steps, with remat_after_updates swapping snapshots underneath.
  uint64_t expected_epoch = 1;
  for (int u = 0; u < 8; ++u) {
    UpdateSpec update;
    update.label = "U" + std::to_string(u);
    if (u % 3 == 2) {
      update.analysis_only = true;
    } else {
      const auto m = static_cast<int64_t>(100 + u * 10);
      update.inserts["Person"] = {{Value(100 + u), Value(m)},
                                  {Value(100 + u), Value(m + 1)}};
      update.inserts["Phrase"] = {
          {Value(m), Value(m + 1), Value(u % 2 ? "and his wife" : "met with")}};
    }
    auto report = dd->ApplyUpdate(update);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->epoch, ++expected_epoch);
  }
  ASSERT_TRUE(dd->incremental_engine()->WaitForMaterialization().ok());

  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(total_queries.load(), 0u);
  // The final view reflects the whole stream.
  EXPECT_EQ(dd->Query()->epoch, expected_epoch);
  EXPECT_EQ(dd->Query()->report.label, "U7");
}

}  // namespace
}  // namespace deepdive
