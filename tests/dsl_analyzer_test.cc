#include <gtest/gtest.h>

#include "dsl/parser.h"
#include "dsl/program.h"
#include "storage/database.h"

namespace deepdive::dsl {
namespace {

constexpr char kBase[] = R"(
  relation Person(s: int, m: int).
  relation EL(m: int, e: int).
  relation Married(e1: int, e2: int).
  query relation HasSpouse(m1: int, m2: int).
  evidence HasSpouseEv(m1: int, m2: int, l: bool) for HasSpouse.
)";

TEST(AnalyzerTest, ValidProgramCompiles) {
  auto program = CompileProgram(std::string(kBase) + R"(
    rule C: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
    factor F: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2) weight = 0.5.
    rule S: HasSpouseEv(m1, m2, true) :-
      Person(s, m1), Person(s, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->relations().size(), 5u);
  EXPECT_EQ(program->deductive_rules().size(), 2u);
  EXPECT_EQ(program->factor_rules().size(), 1u);
}

TEST(AnalyzerTest, RelationLookupHelpers) {
  auto program = CompileProgram(kBase);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->IsQueryRelation("HasSpouse"));
  EXPECT_FALSE(program->IsQueryRelation("Person"));
  EXPECT_TRUE(program->IsEvidenceRelation("HasSpouseEv"));
  EXPECT_EQ(program->EvidenceTarget("HasSpouseEv")->name, "HasSpouse");
  EXPECT_EQ(program->EvidenceRelationsFor("HasSpouse").size(), 1u);
  EXPECT_EQ(program->FindRelation("Nope"), nullptr);
}

TEST(AnalyzerTest, DuplicateRelationIsError) {
  EXPECT_FALSE(CompileProgram("relation R(x: int). relation R(x: int).").ok());
}

TEST(AnalyzerTest, UndeclaredPredicateIsError) {
  auto r = CompileProgram(std::string(kBase) + "rule HasSpouse(a, b) :- Nope(a, b).");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(AnalyzerTest, ArityMismatchIsError) {
  EXPECT_FALSE(
      CompileProgram(std::string(kBase) + "rule HasSpouse(a, b) :- Person(a).").ok());
}

TEST(AnalyzerTest, UnboundHeadVariableIsError) {
  auto r =
      CompileProgram(std::string(kBase) + "rule HasSpouse(a, z) :- Person(s, a).");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not bound"), std::string::npos);
}

TEST(AnalyzerTest, TypeConflictIsError) {
  // x used both as int (Person.m) and as the string column of a new relation.
  auto r = CompileProgram(R"(
    relation A(x: int).
    relation B(x: string).
    relation H(x: int).
    rule H(x) :- A(x), B(x).
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("used as"), std::string::npos);
}

TEST(AnalyzerTest, NegatedOnlyVariableIsError) {
  auto r = CompileProgram(R"(
    relation A(x: int).
    relation B(x: int).
    relation H(x: int).
    rule H(x) :- A(x), !B(y).
  )");
  EXPECT_FALSE(r.ok());
}

TEST(AnalyzerTest, EmptyBodyIsError) {
  EXPECT_FALSE(ParseProgram("rule H(x) :- .").ok());
}

TEST(AnalyzerTest, EvidenceSchemaMustMatchTarget) {
  EXPECT_FALSE(CompileProgram(R"(
    query relation Q(x: int).
    evidence E(x: string, l: bool) for Q.
  )").ok());
  EXPECT_FALSE(CompileProgram(R"(
    query relation Q(x: int).
    evidence E(x: int, l: int) for Q.
  )").ok());
  EXPECT_FALSE(CompileProgram(R"(
    relation NotQuery(x: int).
    evidence E(x: int, l: bool) for NotQuery.
  )").ok());
}

TEST(AnalyzerTest, FactorHeadMustBeQueryRelation) {
  auto r = CompileProgram(R"(
    relation R(x: int).
    factor R(x) :- R(x) weight = 1.
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("query relation"), std::string::npos);
}

TEST(AnalyzerTest, FactorBodyMayNotUseEvidence) {
  EXPECT_FALSE(CompileProgram(R"(
    query relation Q(x: int).
    evidence E(x: int, l: bool) for Q.
    factor Q(x) :- E(x, l) weight = 1.
  )").ok());
}

TEST(AnalyzerTest, TiedWeightVariableMustBeBound) {
  auto r = CompileProgram(R"(
    relation R(x: int).
    query relation Q(x: int).
    factor Q(x) :- R(x) weight = w(f).
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("weight-tying"), std::string::npos);
}

TEST(AnalyzerTest, InstantiateSchemaCreatesAllTables) {
  auto program = CompileProgram(kBase);
  ASSERT_TRUE(program.ok());
  Database db;
  ASSERT_TRUE(program->InstantiateSchema(&db).ok());
  EXPECT_TRUE(db.HasTable("Person"));
  EXPECT_TRUE(db.HasTable("HasSpouse"));
  EXPECT_TRUE(db.HasTable("HasSpouseEv"));
}

TEST(AnalyzerTest, FragmentAddsRulesAndRelations) {
  auto base = CompileProgram(kBase);
  ASSERT_TRUE(base.ok());
  auto fragment = AnalyzeFragment(*base, R"(
    relation Feature(m1: int, m2: int, f: string).
    factor FE1: HasSpouse(m1, m2) :- Feature(m1, m2, f) weight = w(f).
  )");
  ASSERT_TRUE(fragment.ok()) << fragment.status().ToString();
  EXPECT_EQ(fragment->factor_rules().size(), 1u);
  EXPECT_NE(fragment->FindRelation("Feature"), nullptr);
  // The fragment carries no rules from the base program.
  EXPECT_EQ(fragment->deductive_rules().size(), 0u);
  ASSERT_TRUE(base->Merge(*fragment).ok());
  EXPECT_NE(base->FindRelation("Feature"), nullptr);
  EXPECT_EQ(base->factor_rules().size(), 1u);
}

TEST(AnalyzerTest, FragmentConflictingRedeclarationIsError) {
  auto base = CompileProgram(kBase);
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(AnalyzeFragment(*base, "relation Person(x: string).").ok());
}

TEST(AnalyzerTest, FragmentIdenticalRedeclarationIsFine) {
  auto base = CompileProgram(kBase);
  ASSERT_TRUE(base.ok());
  auto fragment = AnalyzeFragment(*base, R"(
    relation Person(s: int, m: int).
    rule X: HasSpouse(m, m2) :- Person(s, m), Person(s, m2).
  )");
  EXPECT_TRUE(fragment.ok()) << fragment.status().ToString();
}

TEST(AnalyzerTest, RemoveRulesByLabel) {
  auto program = CompileProgram(std::string(kBase) + R"(
    rule C: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2).
    factor C: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2) weight = 1.
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->RemoveRulesByLabel("C"), 2u);
  EXPECT_EQ(program->deductive_rules().size(), 0u);
  EXPECT_EQ(program->factor_rules().size(), 0u);
  EXPECT_EQ(program->RemoveRulesByLabel("C"), 0u);
}

}  // namespace
}  // namespace deepdive::dsl
