#include <gtest/gtest.h>

#include "factor/factor_graph.h"
#include "incremental/optimizer.h"

namespace deepdive::incremental {
namespace {

using factor::FactorGraph;
using factor::GraphDelta;

struct Fixture {
  FactorGraph graph;
  factor::WeightId learnable_w;
  factor::WeightId fixed_w;
  factor::GroupId learnable_group;
  factor::GroupId fixed_group;

  Fixture() {
    graph.AddVariables(4);
    learnable_w = graph.AddWeight(0.0, true, "feature");
    fixed_w = graph.AddWeight(0.5, false, "rule");
    learnable_group = graph.AddSimpleFactor(0, {}, learnable_w);
    fixed_group = graph.AddSimpleFactor(1, {}, fixed_w);
  }
};

TEST(OptimizerTest, Rule1StructureUnchangedPicksSampling) {
  Fixture f;
  RuleBasedOptimizer opt;
  GraphDelta delta;  // empty: pure analysis
  auto d = opt.Choose(f.graph, delta, /*samples_available=*/true);
  EXPECT_EQ(d.strategy, Strategy::kSampling);

  delta.weight_changes.push_back({f.fixed_w, 0.5, 0.7});
  d = opt.Choose(f.graph, delta, true);
  EXPECT_EQ(d.strategy, Strategy::kSampling);
}

TEST(OptimizerTest, Rule2EvidencePicksVariational) {
  Fixture f;
  RuleBasedOptimizer opt;
  GraphDelta delta;
  delta.evidence_changes.push_back({0, std::nullopt, true});
  auto d = opt.Choose(f.graph, delta, true);
  EXPECT_EQ(d.strategy, Strategy::kVariational);
  EXPECT_NE(d.reason.find("evidence"), std::string::npos);
}

TEST(OptimizerTest, Rule3NewFeaturesPicksSampling) {
  Fixture f;
  RuleBasedOptimizer opt;
  GraphDelta delta;
  delta.new_groups.push_back(f.learnable_group);
  auto d = opt.Choose(f.graph, delta, true);
  EXPECT_EQ(d.strategy, Strategy::kSampling);
  EXPECT_NE(d.reason.find("new features"), std::string::npos);
}

TEST(OptimizerTest, Rule4OutOfSamplesPicksVariational) {
  Fixture f;
  RuleBasedOptimizer opt;
  GraphDelta delta;
  delta.new_groups.push_back(f.learnable_group);
  auto d = opt.Choose(f.graph, delta, /*samples_available=*/false);
  EXPECT_EQ(d.strategy, Strategy::kVariational);
  EXPECT_NE(d.reason.find("out of samples"), std::string::npos);
}

TEST(OptimizerTest, FixedWeightStructuralChangeGoesVariational) {
  Fixture f;
  RuleBasedOptimizer opt;
  GraphDelta delta;
  delta.new_groups.push_back(f.fixed_group);
  auto d = opt.Choose(f.graph, delta, true);
  EXPECT_EQ(d.strategy, Strategy::kVariational);
}

TEST(OptimizerTest, LesionSamplingDisabled) {
  Fixture f;
  OptimizerConfig config;
  config.sampling_enabled = false;
  RuleBasedOptimizer opt(config);
  GraphDelta delta;
  auto d = opt.Choose(f.graph, delta, true);
  EXPECT_EQ(d.strategy, Strategy::kVariational);
}

TEST(OptimizerTest, LesionVariationalDisabled) {
  Fixture f;
  OptimizerConfig config;
  config.variational_enabled = false;
  RuleBasedOptimizer opt(config);
  GraphDelta delta;
  delta.evidence_changes.push_back({0, std::nullopt, true});
  auto d = opt.Choose(f.graph, delta, /*samples_available=*/true);
  EXPECT_EQ(d.strategy, Strategy::kSampling);
  // ... and with no samples either, we must rerun.
  d = opt.Choose(f.graph, delta, /*samples_available=*/false);
  EXPECT_EQ(d.strategy, Strategy::kRerun);
}

TEST(OptimizerTest, BothDisabledFallsBackToRerun) {
  Fixture f;
  OptimizerConfig config;
  config.sampling_enabled = false;
  config.variational_enabled = false;
  RuleBasedOptimizer opt(config);
  GraphDelta delta;
  auto d = opt.Choose(f.graph, delta, true);
  EXPECT_EQ(d.strategy, Strategy::kRerun);
}

TEST(OptimizerTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kSampling), "sampling");
  EXPECT_STREQ(StrategyName(Strategy::kVariational), "variational");
  EXPECT_STREQ(StrategyName(Strategy::kStrawman), "strawman");
  EXPECT_STREQ(StrategyName(Strategy::kRerun), "rerun");
}

}  // namespace
}  // namespace deepdive::incremental
