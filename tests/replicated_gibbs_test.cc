// Replicated (NUMA-style) Gibbs sampling: single-replica bit-equivalence to
// the shared-world sampler, fixed-seed determinism at one thread per
// replica, cross-replica marginal quality, synchronization edge cases, and
// the (seed, replica, worker) RNG stream keying. The multi-replica cases
// also run under the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "factor/factor_graph.h"
#include "inference/exact.h"
#include "inference/gibbs.h"
#include "inference/parallel_gibbs.h"
#include "inference/replicated_gibbs.h"
#include "util/random.h"

namespace deepdive::inference {
namespace {

using factor::FactorGraph;
using factor::Semantics;
using factor::VarId;
using factor::WeightId;

/// Random small graph (same construction as parallel_gibbs_test).
FactorGraph RandomGraph(uint64_t seed, size_t num_vars, size_t num_groups,
                        Semantics semantics, size_t evidence_count = 0) {
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(num_vars);
  for (size_t i = 0; i < num_groups; ++i) {
    const VarId head = static_cast<VarId>(rng.UniformInt(num_vars));
    const WeightId w = g.AddWeight(rng.Uniform(-1.0, 1.0), false);
    const auto grp = g.AddGroup(static_cast<uint32_t>(i), head, w, semantics);
    const size_t clauses = 1 + rng.UniformInt(3);
    for (size_t c = 0; c < clauses; ++c) {
      std::vector<factor::Literal> lits;
      const size_t n_lits = rng.UniformInt(3);
      for (size_t l = 0; l < n_lits; ++l) {
        VarId v = static_cast<VarId>(rng.UniformInt(num_vars));
        if (v == head) continue;
        bool dup = false;
        for (const auto& lit : lits) dup |= lit.var == v;
        if (dup) continue;
        lits.push_back({v, rng.Bernoulli(0.3)});
      }
      g.AddClause(grp, lits);
    }
  }
  for (size_t e = 0; e < evidence_count; ++e) {
    g.SetEvidence(static_cast<VarId>(rng.UniformInt(num_vars)), rng.Bernoulli(0.5));
  }
  return g;
}

FactorGraph ChainGraph(size_t n, uint64_t seed) {
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddSimpleFactor(static_cast<VarId>(i), {{static_cast<VarId>(i + 1), false}},
                      g.AddWeight(rng.Uniform(-0.8, 0.8), false));
  }
  for (size_t i = 0; i < n; ++i) {
    g.AddSimpleFactor(static_cast<VarId>(i), {},
                      g.AddWeight(rng.Uniform(-0.5, 0.5), false));
  }
  return g;
}

// ---- single-replica bit-equivalence ----------------------------------------

TEST(ReplicatedGibbsTest, SingleReplicaMatchesParallelSamplerExactly) {
  for (uint64_t seed : {3u, 17u}) {
    FactorGraph g = RandomGraph(seed, 9, 11, Semantics::kLinear, 2);
    GibbsOptions options;
    options.burn_in_sweeps = 20;
    options.sample_sweeps = 100;
    options.seed = seed * 31 + 1;

    const auto parallel = ParallelGibbsSampler(&g, 1).EstimateMarginals(options);
    const auto replicated =
        ReplicatedGibbsSampler(&g, 1, 1).EstimateMarginals(options);

    ASSERT_EQ(replicated.marginals.size(), parallel.marginals.size());
    for (size_t v = 0; v < parallel.marginals.size(); ++v) {
      EXPECT_DOUBLE_EQ(replicated.marginals[v], parallel.marginals[v])
          << "var " << v;
    }
    EXPECT_EQ(replicated.sweeps, parallel.sweeps);
    EXPECT_EQ(replicated.flips, parallel.flips);

    // ... and therefore to the sequential sampler as well.
    const auto sequential = GibbsSampler(&g).EstimateMarginals(options);
    for (size_t v = 0; v < sequential.marginals.size(); ++v) {
      EXPECT_DOUBLE_EQ(replicated.marginals[v], sequential.marginals[v])
          << "var " << v;
    }
  }
}

TEST(ReplicatedGibbsTest, SingleReplicaDrawSamplesMatchesParallelSampler) {
  FactorGraph g = RandomGraph(11, 6, 6, Semantics::kLinear);
  GibbsOptions options;
  options.burn_in_sweeps = 10;
  options.seed = 33;
  const auto parallel = ParallelGibbsSampler(&g, 1).DrawSamples(5, 2, options);
  const auto replicated = ReplicatedGibbsSampler(&g, 1, 1).DrawSamples(5, 2, options);
  ASSERT_EQ(replicated.size(), parallel.size());
  for (size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(replicated[i], parallel[i]) << "sample " << i;
  }
}

// ---- fixed-seed determinism ------------------------------------------------

TEST(ReplicatedGibbsTest, DeterministicAtOneThreadPerReplica) {
  FactorGraph g = ChainGraph(120, 7);
  GibbsOptions options;
  options.burn_in_sweeps = 30;
  options.sample_sweeps = 200;
  options.sync_every_sweeps = 40;
  options.seed = 91;

  ReplicatedGibbsSampler a(&g, 3, 3);
  ReplicatedGibbsSampler b(&g, 3, 3);
  const auto ra = a.EstimateMarginals(options);
  const auto rb = b.EstimateMarginals(options);
  ASSERT_EQ(ra.marginals.size(), rb.marginals.size());
  for (size_t v = 0; v < ra.marginals.size(); ++v) {
    EXPECT_DOUBLE_EQ(ra.marginals[v], rb.marginals[v]) << "var " << v;
  }
  EXPECT_EQ(ra.flips, rb.flips);

  const auto sa = a.DrawSamples(7, 2, options);
  const auto sb = b.DrawSamples(7, 2, options);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i], sb[i]) << "sample " << i;
  }
}

// ---- marginal quality ------------------------------------------------------

TEST(ReplicatedGibbsTest, ReplicaMarginalsCloseToSequential) {
  FactorGraph g = ChainGraph(200, 41);
  GibbsOptions options;
  options.burn_in_sweeps = 100;
  options.sample_sweeps = 2000;
  options.sync_every_sweeps = 200;
  options.seed = 5;

  const auto sequential = GibbsSampler(&g).EstimateMarginals(options);
  const auto replicated =
      ReplicatedGibbsSampler(&g, 4, 4).EstimateMarginals(options);

  ASSERT_EQ(replicated.marginals.size(), sequential.marginals.size());
  double max_diff = 0.0, sum_diff = 0.0;
  for (size_t v = 0; v < sequential.marginals.size(); ++v) {
    const double d = std::abs(replicated.marginals[v] - sequential.marginals[v]);
    max_diff = std::max(max_diff, d);
    sum_diff += d;
  }
  EXPECT_LT(sum_diff / static_cast<double>(sequential.marginals.size()), 0.02);
  EXPECT_LT(max_diff, 0.10);
}

TEST(ReplicatedGibbsTest, ReplicaMarginalsConvergeToExact) {
  FactorGraph g = RandomGraph(2, 7, 9, Semantics::kLinear, 2);
  auto exact = ExactInference(g);
  ASSERT_TRUE(exact.ok());

  GibbsOptions options;
  options.burn_in_sweeps = 300;
  options.sample_sweeps = 4000;
  options.sync_every_sweeps = 500;
  options.seed = 15;
  const auto result = ReplicatedGibbsSampler(&g, 3, 3).EstimateMarginals(options);
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(result.marginals[v], exact->marginals[v], 0.05) << "var " << v;
  }
}

// ---- synchronization edge cases --------------------------------------------

TEST(ReplicatedGibbsTest, SyncLongerThanRunMatchesDisabledSync) {
  // A cadence beyond the total sweep count must behave exactly like disabled
  // periodic synchronization (final merge only) — bitwise.
  FactorGraph g = ChainGraph(80, 13);
  GibbsOptions never;
  never.burn_in_sweeps = 25;
  never.sample_sweeps = 75;
  never.seed = 44;
  never.sync_every_sweeps = 0;
  GibbsOptions huge = never;
  huge.sync_every_sweeps = 1000000000;

  const auto a = ReplicatedGibbsSampler(&g, 2, 2).EstimateMarginals(never);
  const auto b = ReplicatedGibbsSampler(&g, 2, 2).EstimateMarginals(huge);
  ASSERT_EQ(a.marginals.size(), b.marginals.size());
  for (size_t v = 0; v < a.marginals.size(); ++v) {
    EXPECT_DOUBLE_EQ(a.marginals[v], b.marginals[v]) << "var " << v;
  }
  EXPECT_EQ(a.flips, b.flips);
}

TEST(ReplicatedGibbsTest, MidBurnInSyncStaysDeterministicAndAccurate) {
  // A cadence shorter than burn-in forces consensus re-seeds before any
  // sample is taken (the instantaneous-state consensus path).
  FactorGraph g = RandomGraph(6, 8, 10, Semantics::kLinear, 1);
  auto exact = ExactInference(g);
  ASSERT_TRUE(exact.ok());

  GibbsOptions options;
  options.burn_in_sweeps = 30;
  options.sample_sweeps = 4000;
  options.sync_every_sweeps = 10;  // 3 syncs during burn-in alone
  options.seed = 77;
  const auto a = ReplicatedGibbsSampler(&g, 2, 2).EstimateMarginals(options);
  const auto b = ReplicatedGibbsSampler(&g, 2, 2).EstimateMarginals(options);
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_DOUBLE_EQ(a.marginals[v], b.marginals[v]) << "var " << v;
    EXPECT_NEAR(a.marginals[v], exact->marginals[v], 0.06) << "var " << v;
  }
}

TEST(ReplicatedGibbsTest, EvidenceNeverResampledAcrossReplicas) {
  FactorGraph g = ChainGraph(100, 3);
  g.SetEvidence(0, false);
  g.SetEvidence(50, true);
  g.SetEvidence(99, false);
  GibbsOptions options;
  options.sample_sweeps = 50;
  options.sync_every_sweeps = 20;  // consensus re-seeds must respect labels
  const auto result = ReplicatedGibbsSampler(&g, 2, 2).EstimateMarginals(options);
  EXPECT_DOUBLE_EQ(result.marginals[0], 0.0);
  EXPECT_DOUBLE_EQ(result.marginals[50], 1.0);
  EXPECT_DOUBLE_EQ(result.marginals[99], 0.0);
}

// ---- SampleChain contract --------------------------------------------------

TEST(ReplicatedGibbsTest, SampleChainStopsOnCallbackFalse) {
  FactorGraph g = ChainGraph(20, 5);
  GibbsOptions options;
  options.burn_in_sweeps = 2;
  options.sync_every_sweeps = 3;
  for (size_t replicas : {1u, 3u}) {
    ReplicatedGibbsSampler sampler(&g, replicas, replicas);
    size_t emitted = 0;
    sampler.SampleChain(options, /*count=*/50, /*thin=*/1, [&](const BitVector&) {
      ++emitted;
      return emitted < 3;
    });
    EXPECT_EQ(emitted, 3u) << "replicas=" << replicas;
  }
}

TEST(ReplicatedGibbsTest, SampleChainHonorsInterrupt) {
  FactorGraph g = ChainGraph(40, 9);
  GibbsOptions options;
  options.burn_in_sweeps = 5;
  std::atomic<size_t> emitted{0};
  options.interrupt = [&emitted] { return emitted.load() >= 2; };
  ReplicatedGibbsSampler sampler(&g, 2, 2);
  sampler.SampleChain(options, /*count=*/100, /*thin=*/1, [&](const BitVector&) {
    emitted.fetch_add(1);
    return true;
  });
  // The chain abandoned the run shortly after the hook fired instead of
  // emitting all 100 samples.
  EXPECT_GE(emitted.load(), 2u);
  EXPECT_LT(emitted.load(), 10u);
}

TEST(ReplicatedGibbsTest, DrawSamplesDeterministicRoundRobin) {
  FactorGraph g = ChainGraph(60, 21);
  GibbsOptions options;
  options.burn_in_sweeps = 10;
  options.sync_every_sweeps = 8;
  options.seed = 12;
  ReplicatedGibbsSampler a(&g, 2, 2);
  ReplicatedGibbsSampler b(&g, 2, 2);
  const auto sa = a.DrawSamples(6, 3, options);
  const auto sb = b.DrawSamples(6, 3, options);
  ASSERT_EQ(sa.size(), 6u);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]) << i;
}

// ---- RNG stream keying -----------------------------------------------------

TEST(ReplicatedGibbsTest, StreamsKeyedBySeedReplicaAndWorker) {
  FactorGraph g = ChainGraph(10, 1);
  ParallelGibbsSampler sampler(&g, 4);
  // Distinct (replica, worker) pairs — and the replica-private auxiliary
  // streams — must all open decorrelated streams for one base seed.
  std::set<uint64_t> firsts;
  size_t streams = 0;
  for (uint64_t replica = 0; replica < 3; ++replica) {
    std::vector<Rng> rngs = sampler.MakeRngStreams(/*seed=*/99, replica);
    ASSERT_EQ(rngs.size(), 4u);
    for (Rng& rng : rngs) {
      firsts.insert(rng.Next());
      ++streams;
    }
    for (uint64_t aux : {ReplicatedGibbsSampler::kInitStream,
                         ReplicatedGibbsSampler::kSyncStream}) {
      Rng rng(ReplicatedGibbsSampler::AuxSeed(99, replica, aux));
      firsts.insert(rng.Next());
      ++streams;
    }
  }
  EXPECT_EQ(firsts.size(), streams);
}

}  // namespace
}  // namespace deepdive::inference
