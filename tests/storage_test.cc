#include <gtest/gtest.h>

#include <algorithm>

#include "storage/database.h"
#include "storage/delta_table.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace deepdive {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_EQ(Value(3).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
  // Cross-type ordering is by type tag, and is total.
  EXPECT_TRUE(Value(1) < Value("x") || Value("x") < Value(1));
}

TEST(ValueTest, HashConsistency) {
  EXPECT_EQ(Value(7).Hash(), Value(7).Hash());
  EXPECT_NE(Value(7).Hash(), Value(8).Hash());
  EXPECT_EQ(Value("spouse").Hash(), Value("spouse").Hash());
  EXPECT_NE(Value().Hash(), Value(0).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "x");
}

TEST(TupleTest, HashAndToString) {
  Tuple t = {Value(1), Value("a")};
  EXPECT_EQ(HashTuple(t), HashTuple({Value(1), Value("a")}));
  EXPECT_NE(HashTuple(t), HashTuple({Value("a"), Value(1)}));
  EXPECT_EQ(TupleToString(t), "(1, a)");
}

Schema TwoColSchema() {
  return Schema({{"id", ValueType::kInt}, {"name", ValueType::kString}});
}

TEST(SchemaTest, FindColumn) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.FindColumn("id"), 0);
  EXPECT_EQ(s.FindColumn("name"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

TEST(SchemaTest, ValidateTuple) {
  Schema s = TwoColSchema();
  EXPECT_TRUE(s.ValidateTuple({Value(1), Value("x")}).ok());
  EXPECT_TRUE(s.ValidateTuple({Value(1), Value::Null()}).ok());
  EXPECT_FALSE(s.ValidateTuple({Value(1)}).ok());
  EXPECT_FALSE(s.ValidateTuple({Value("x"), Value("y")}).ok());
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(TwoColSchema().ToString(), "(id: int, name: string)");
}

TEST(TableTest, InsertDeduplicates) {
  Table t("T", TwoColSchema());
  auto id1 = t.Insert({Value(1), Value("a")});
  auto id2 = t.Insert({Value(1), Value("a")});
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, InsertValidatesSchema) {
  Table t("T", TwoColSchema());
  EXPECT_FALSE(t.Insert({Value("wrong"), Value("a")}).ok());
}

TEST(TableTest, EraseAndContains) {
  Table t("T", TwoColSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  EXPECT_TRUE(t.Contains({Value(1), Value("a")}));
  EXPECT_TRUE(t.Erase({Value(1), Value("a")}));
  EXPECT_FALSE(t.Contains({Value(1), Value("a")}));
  EXPECT_FALSE(t.Erase({Value(1), Value("a")}));
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableTest, ReinsertAfterErase) {
  Table t("T", TwoColSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  t.Erase({Value(1), Value("a")});
  ASSERT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Contains({Value(1), Value("a")}));
}

TEST(TableTest, ScanSkipsTombstones) {
  Table t("T", TwoColSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  ASSERT_TRUE(t.Insert({Value(2), Value("b")}).ok());
  t.Erase({Value(1), Value("a")});
  size_t count = 0;
  t.Scan([&](RowId, const Tuple& row) {
    ++count;
    EXPECT_EQ(row[0].AsInt(), 2);
  });
  EXPECT_EQ(count, 1u);
}

TEST(TableTest, LookupByColumn) {
  Table t("T", TwoColSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  ASSERT_TRUE(t.Insert({Value(1), Value("b")}).ok());
  ASSERT_TRUE(t.Insert({Value(2), Value("a")}).ok());
  EXPECT_EQ(t.Lookup(0, Value(1)).size(), 2u);
  EXPECT_EQ(t.Lookup(1, Value("a")).size(), 2u);
  EXPECT_EQ(t.Lookup(0, Value(99)).size(), 0u);
}

TEST(TableTest, LookupSeesInsertsAfterIndexBuild) {
  Table t("T", TwoColSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  EXPECT_EQ(t.Lookup(0, Value(1)).size(), 1u);  // builds the index
  ASSERT_TRUE(t.Insert({Value(1), Value("z")}).ok());
  EXPECT_EQ(t.Lookup(0, Value(1)).size(), 2u);  // maintained incrementally
  t.Erase({Value(1), Value("a")});
  EXPECT_EQ(t.Lookup(0, Value(1)).size(), 1u);
}

TEST(TableTest, RowsAndClear) {
  Table t("T", TwoColSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  ASSERT_TRUE(t.Insert({Value(2), Value("b")}).ok());
  EXPECT_EQ(t.Rows().size(), 2u);
  t.Clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Lookup(0, Value(1)).size(), 0u);
}

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  auto t = db.CreateTable("T", TwoColSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_NE(db.GetTable("T"), nullptr);
  EXPECT_TRUE(db.HasTable("T"));
  EXPECT_FALSE(db.CreateTable("T", TwoColSchema()).ok());
  EXPECT_TRUE(db.DropTable("T").ok());
  EXPECT_EQ(db.GetTable("T"), nullptr);
  EXPECT_FALSE(db.DropTable("T").ok());
}

TEST(DatabaseTest, TotalRowsAndNames) {
  Database db;
  ASSERT_TRUE(db.CreateTable("A", TwoColSchema()).ok());
  ASSERT_TRUE(db.CreateTable("B", TwoColSchema()).ok());
  ASSERT_TRUE(db.GetTable("A")->Insert({Value(1), Value("x")}).ok());
  EXPECT_EQ(db.TotalRows(), 1u);
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"A", "B"}));
}

TEST(DeltaTableTest, CountingSemantics) {
  DeltaTable dt("d");
  Tuple t = {Value(1)};
  EXPECT_TRUE(dt.empty());
  dt.Add(t, 1);
  EXPECT_EQ(dt.Count(t), 1);
  dt.Add(t, 2);
  EXPECT_EQ(dt.Count(t), 3);
  dt.Add(t, -3);
  EXPECT_EQ(dt.Count(t), 0);
  EXPECT_TRUE(dt.empty());
}

TEST(DeltaTableTest, InsertionsAndDeletions) {
  DeltaTable dt;
  dt.Add({Value(1)}, 1);
  dt.Add({Value(2)}, -1);
  dt.Add({Value(3)}, 1);
  EXPECT_EQ(dt.Insertions().size(), 2u);
  EXPECT_EQ(dt.Deletions().size(), 1u);
  EXPECT_EQ(dt.size(), 3u);
}

// Regression: variable ids are assigned in delta-visit order and reach the
// published view, so the order-sensitive consumers (grounding) go through
// ForEachOrdered — which must visit in tuple order no matter how the hash
// table laid the entries out.
TEST(DeltaTableTest, ForEachOrderedVisitsInTupleOrder) {
  DeltaTable dt;
  dt.Add({Value(9)}, 1);
  dt.Add({Value(2)}, 1);
  dt.Add({Value(7)}, -2);
  dt.Add({Value(1)}, 1);
  dt.Add({Value(5)}, 1);
  dt.Add({Value(5)}, -1);  // nets to zero: must be skipped
  std::vector<Tuple> visited;
  dt.ForEachOrdered([&](const Tuple& t, int64_t) { visited.push_back(t); });
  ASSERT_EQ(visited.size(), 4u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
  std::vector<Tuple> expect = {{Value(1)}, {Value(2)}, {Value(7)}, {Value(9)}};
  EXPECT_EQ(visited, expect);
}

TEST(DeltaTableTest, InsertionsAndDeletionsAreSorted) {
  DeltaTable dt;
  dt.Add({Value(3)}, 1);
  dt.Add({Value(1)}, 1);
  dt.Add({Value(4)}, -1);
  dt.Add({Value(2)}, -1);
  const std::vector<Tuple> ins = dt.Insertions();
  const std::vector<Tuple> del = dt.Deletions();
  EXPECT_TRUE(std::is_sorted(ins.begin(), ins.end()));
  EXPECT_TRUE(std::is_sorted(del.begin(), del.end()));
  EXPECT_EQ(ins, (std::vector<Tuple>{{Value(1)}, {Value(3)}}));
  EXPECT_EQ(del, (std::vector<Tuple>{{Value(2)}, {Value(4)}}));
}

TEST(DeltaTableTest, ForEachSkipsZeroCounts) {
  DeltaTable dt;
  dt.Add({Value(1)}, 1);
  dt.Add({Value(1)}, -1);
  dt.Add({Value(2)}, 5);
  size_t visited = 0;
  dt.ForEach([&](const Tuple& t, int64_t c) {
    ++visited;
    EXPECT_EQ(t[0].AsInt(), 2);
    EXPECT_EQ(c, 5);
  });
  EXPECT_EQ(visited, 1u);
}

TEST(DeltaTableTest, ClearResets) {
  DeltaTable dt;
  dt.Add({Value(1)}, 1);
  dt.Clear();
  EXPECT_TRUE(dt.empty());
  EXPECT_EQ(dt.Count({Value(1)}), 0);
}

}  // namespace
}  // namespace deepdive
