#include <gtest/gtest.h>

#include <cmath>

#include "factor/factor_graph.h"
#include "inference/exact.h"
#include "inference/gibbs.h"
#include "inference/world.h"
#include "util/random.h"

namespace deepdive::inference {
namespace {

using factor::FactorGraph;
using factor::GroupId;
using factor::Semantics;
using factor::VarId;
using factor::WeightId;

/// Random small graph: a mix of priors and grouped multi-clause factors.
FactorGraph RandomGraph(uint64_t seed, size_t num_vars, size_t num_groups,
                        Semantics semantics, size_t evidence_count = 0) {
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(num_vars);
  for (size_t i = 0; i < num_groups; ++i) {
    const VarId head = static_cast<VarId>(rng.UniformInt(num_vars));
    const WeightId w = g.AddWeight(rng.Uniform(-1.0, 1.0), false);
    const GroupId grp = g.AddGroup(static_cast<uint32_t>(i), head, w, semantics);
    const size_t clauses = 1 + rng.UniformInt(3);
    for (size_t c = 0; c < clauses; ++c) {
      std::vector<factor::Literal> lits;
      const size_t n_lits = rng.UniformInt(3);
      for (size_t l = 0; l < n_lits; ++l) {
        VarId v = static_cast<VarId>(rng.UniformInt(num_vars));
        if (v == head) continue;
        bool dup = false;
        for (const auto& lit : lits) dup |= lit.var == v;
        if (dup) continue;
        lits.push_back({v, rng.Bernoulli(0.3)});
      }
      g.AddClause(grp, lits);
    }
  }
  for (size_t e = 0; e < evidence_count; ++e) {
    g.SetEvidence(static_cast<VarId>(rng.UniformInt(num_vars)), rng.Bernoulli(0.5));
  }
  return g;
}

TEST(WorldTest, StatsMatchBruteForceAfterRandomFlips) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    FactorGraph g = RandomGraph(seed, 8, 10, Semantics::kLinear);
    World world(&g);
    Rng rng(seed + 100);
    world.InitValues(&rng, true);
    for (int step = 0; step < 50; ++step) {
      const VarId v = static_cast<VarId>(rng.UniformInt(8));
      world.Flip(v, rng.Bernoulli(0.5));
      // Brute-force group stats.
      auto value_of = [&](VarId u) { return world.value(u); };
      for (GroupId grp = 0; grp < g.NumGroups(); ++grp) {
        ASSERT_EQ(world.GroupSat(grp), g.SatisfiedClauses(grp, value_of))
            << "seed " << seed << " step " << step;
      }
      ASSERT_NEAR(world.TotalLogWeight(), g.TotalLogWeight(value_of), 1e-9);
    }
  }
}

TEST(WorldTest, EvidenceForcedOnInit) {
  FactorGraph g;
  g.AddVariables(3);
  g.SetEvidence(0, true);
  g.SetEvidence(1, false);
  World world(&g);
  Rng rng(5);
  world.InitValues(&rng, true);
  EXPECT_TRUE(world.value(0));
  EXPECT_FALSE(world.value(1));
}

TEST(WorldTest, BitsRoundTrip) {
  FactorGraph g = RandomGraph(9, 10, 5, Semantics::kRatio);
  World world(&g);
  Rng rng(17);
  world.InitValues(&rng, true);
  const BitVector bits = world.ToBits();
  World other(&g);
  other.LoadBits(bits);
  for (VarId v = 0; v < 10; ++v) EXPECT_EQ(world.value(v), other.value(v));
  EXPECT_NEAR(world.TotalLogWeight(), other.TotalLogWeight(), 1e-12);
}

TEST(WorldTest, LoadBitsPrefixFills) {
  FactorGraph g;
  g.AddVariables(4);
  World world(&g);
  BitVector bits(2);
  bits.Set(0, true);
  world.LoadBitsPrefix(bits, /*fill=*/true);
  EXPECT_TRUE(world.value(0));
  EXPECT_FALSE(world.value(1));
  EXPECT_TRUE(world.value(2));
  EXPECT_TRUE(world.value(3));
}

TEST(WorldTest, SyncStructureAbsorbsNewClauses) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const WeightId w = g.AddWeight(1.0, false);
  g.AddSimpleFactor(a, {}, w);
  World world(&g);
  world.Flip(a, true);
  // Extend the graph.
  const VarId b = g.AddVariable();
  const GroupId grp = g.AddGroup(1, b, w, Semantics::kLinear);
  g.AddClause(grp, {{a, false}});
  world.SyncStructure();
  EXPECT_EQ(world.NumVariables(), 2u);
  EXPECT_EQ(world.GroupSat(grp), 1);  // a is true
}

TEST(WorldTest, WeightFeature) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const VarId b = g.AddVariable();
  const WeightId w = g.AddWeight(0.0, true);
  g.AddSimpleFactor(a, {}, w, Semantics::kLinear);
  g.AddSimpleFactor(b, {}, w, Semantics::kLinear);
  World world(&g);
  world.Flip(a, true);  // b stays false
  EXPECT_DOUBLE_EQ(world.WeightFeature(w), 1.0 - 1.0);
  world.Flip(b, true);
  EXPECT_DOUBLE_EQ(world.WeightFeature(w), 2.0);
}

TEST(GibbsTest, ConditionalLogOddsMatchesExactOnPair) {
  // h with prior w1 and pairwise factor w2 * sign(h) * 1{b}.
  FactorGraph g;
  const VarId h = g.AddVariable();
  const VarId b = g.AddVariable();
  const WeightId w1 = g.AddWeight(0.7, false);
  const WeightId w2 = g.AddWeight(-0.4, false);
  g.AddSimpleFactor(h, {}, w1);
  g.AddSimpleFactor(h, {{b, false}}, w2);

  World world(&g);
  world.Flip(b, true);
  GibbsSampler sampler(&g);
  // W(h=1) - W(h=0) = 2*(0.7 + -0.4) = 0.6.
  EXPECT_NEAR(sampler.ConditionalLogOdds(world, h), 0.6, 1e-12);
  world.Flip(b, false);
  EXPECT_NEAR(sampler.ConditionalLogOdds(world, h), 2 * 0.7, 1e-12);

  // For b: body membership of the h-headed group. h currently false:
  // dW = w2 * (-1) * (g(1) - g(0)) = 0.4.
  world.Flip(h, false);
  EXPECT_NEAR(sampler.ConditionalLogOdds(world, b), 0.4, 1e-12);
  world.Flip(h, true);
  EXPECT_NEAR(sampler.ConditionalLogOdds(world, b), -0.4, 1e-12);
}

struct GibbsVsExactCase {
  uint64_t seed;
  Semantics semantics;
  size_t evidence;
};

class GibbsVsExact : public ::testing::TestWithParam<GibbsVsExactCase> {};

TEST_P(GibbsVsExact, MarginalsConverge) {
  const auto& param = GetParam();
  FactorGraph g = RandomGraph(param.seed, 7, 9, param.semantics, param.evidence);
  auto exact = ExactInference(g);
  ASSERT_TRUE(exact.ok());

  GibbsSampler sampler(&g);
  GibbsOptions options;
  options.burn_in_sweeps = 300;
  options.sample_sweeps = 6000;
  options.seed = param.seed * 7 + 1;
  const auto result = sampler.EstimateMarginals(options);
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(result.marginals[v], exact->marginals[v], 0.04)
        << "var " << v << " seed " << param.seed << " semantics "
        << SemanticsName(param.semantics);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GibbsVsExact,
    ::testing::Values(GibbsVsExactCase{1, Semantics::kLinear, 0},
                      GibbsVsExactCase{2, Semantics::kLinear, 2},
                      GibbsVsExactCase{3, Semantics::kRatio, 0},
                      GibbsVsExactCase{4, Semantics::kRatio, 2},
                      GibbsVsExactCase{5, Semantics::kLogical, 0},
                      GibbsVsExactCase{6, Semantics::kLogical, 2},
                      GibbsVsExactCase{7, Semantics::kRatio, 1},
                      GibbsVsExactCase{8, Semantics::kLinear, 1}));

TEST(GibbsTest, EvidenceNeverResampled) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const WeightId w = g.AddWeight(5.0, false);  // strongly pulls a to true
  g.AddSimpleFactor(a, {}, w);
  g.SetEvidence(a, false);
  GibbsSampler sampler(&g);
  GibbsOptions options;
  options.sample_sweeps = 50;
  const auto result = sampler.EstimateMarginals(options);
  EXPECT_DOUBLE_EQ(result.marginals[a], 0.0);
}

TEST(GibbsTest, SampleEvidenceModeFreesEvidence) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const WeightId w = g.AddWeight(5.0, false);
  g.AddSimpleFactor(a, {}, w);
  g.SetEvidence(a, false);
  GibbsSampler sampler(&g);
  GibbsOptions options;
  options.sample_sweeps = 100;
  options.sample_evidence = true;
  const auto result = sampler.EstimateMarginals(options);
  EXPECT_GT(result.marginals[a], 0.9);  // the strong prior wins
}

TEST(GibbsTest, DrawSamplesShapeAndDeterminism) {
  FactorGraph g = RandomGraph(11, 6, 6, Semantics::kLinear);
  GibbsSampler sampler(&g);
  GibbsOptions options;
  options.burn_in_sweeps = 10;
  options.seed = 33;
  const auto s1 = sampler.DrawSamples(5, 2, options);
  const auto s2 = sampler.DrawSamples(5, 2, options);
  ASSERT_EQ(s1.size(), 5u);
  EXPECT_EQ(s1[0].size(), 6u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(s1[i], s2[i]);
}

TEST(ExactTest, RejectsTooManyVariables) {
  FactorGraph g;
  g.AddVariables(30);
  EXPECT_FALSE(ExactInference(g, 24).ok());
}

TEST(ExactTest, TwoIndependentPriors) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const VarId b = g.AddVariable();
  g.AddSimpleFactor(a, {}, g.AddWeight(0.5, false));
  g.AddSimpleFactor(b, {}, g.AddWeight(-1.0, false));
  auto exact = ExactInference(g);
  ASSERT_TRUE(exact.ok());
  // P(v=1) = e^w / (e^w + e^-w) = sigmoid(2w).
  EXPECT_NEAR(exact->marginals[a], 1.0 / (1.0 + std::exp(-1.0)), 1e-9);
  EXPECT_NEAR(exact->marginals[b], 1.0 / (1.0 + std::exp(2.0)), 1e-9);
  // World probabilities sum to 1.
  double total = 0;
  for (double p : exact->world_probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace deepdive::inference
