#include <gtest/gtest.h>

#include "kbc/pipeline.h"
#include "kbc/snapshots.h"
#include "util/thread_role.h"

namespace deepdive::kbc {
namespace {

SystemProfile TinyProfile() {
  SystemProfile p = ProfileFor(SystemKind::kPaleontology);
  p.num_documents = 40;
  p.sentences_per_doc = 1;
  p.num_entities = 24;
  p.num_true_pairs = 10;
  p.num_negative_pairs = 10;
  return p;
}

PipelineOptions TinyOptions() {
  PipelineOptions options;
  options.config = core::FastTestConfig();
  options.seed = 3;
  return options;
}

TEST(KbcPipelineTest, BuildAndInitialize) {
  deepdive::serving_thread.AssertHeld();
  auto pipeline = KbcPipeline::Build(TinyProfile(), TinyOptions());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_TRUE((*pipeline)->Initialize().ok());
  auto& dd = (*pipeline)->deepdive();
  EXPECT_GT(dd.ground().graph.NumVariables(), 0u);
  EXPECT_GT(dd.db()->GetTable("PersonCandidate")->size(), 0u);
  EXPECT_GT(dd.db()->GetTable("HasSpouse")->size(), 0u);
}

TEST(KbcPipelineTest, UpdateSequenceIsFigure8) {
  deepdive::serving_thread.AssertHeld();
  EXPECT_EQ(KbcPipeline::UpdateSequence(),
            (std::vector<std::string>{"A1", "FE1", "FE2", "I1", "S1", "S2"}));
}

TEST(KbcPipelineTest, UnknownUpdateRejected) {
  deepdive::serving_thread.AssertHeld();
  auto pipeline = KbcPipeline::Build(TinyProfile(), TinyOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Initialize().ok());
  EXPECT_FALSE((*pipeline)->ApplyUpdate("ZZZ").ok());
}

TEST(KbcPipelineTest, FullUpdateSequenceImprovesQuality) {
  deepdive::serving_thread.AssertHeld();
  auto pipeline = KbcPipeline::Build(TinyProfile(), TinyOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Initialize().ok());

  const double f1_before = (*pipeline)->EvaluateMentions(0.5).f1;
  for (const std::string& rule : KbcPipeline::UpdateSequence()) {
    auto report = (*pipeline)->ApplyUpdate(rule);
    ASSERT_TRUE(report.ok()) << rule << ": " << report.status().ToString();
  }
  const double f1_after = (*pipeline)->EvaluateMentions(0.5).f1;
  // Supervision + features must lift quality well above the featureless
  // prior-only baseline (which predicts nothing).
  EXPECT_GT(f1_after, f1_before);
  EXPECT_GT(f1_after, 0.4);
}

TEST(KbcPipelineTest, FactLevelEvaluationRuns) {
  deepdive::serving_thread.AssertHeld();
  auto pipeline = KbcPipeline::Build(TinyProfile(), TinyOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Initialize().ok());
  for (const std::string& rule : KbcPipeline::UpdateSequence()) {
    ASSERT_TRUE((*pipeline)->ApplyUpdate(rule).ok());
  }
  const PrecisionRecall facts = (*pipeline)->EvaluateFacts(0.7);
  EXPECT_GE(facts.precision, 0.0);
  EXPECT_LE(facts.precision, 1.0);
  EXPECT_GT(facts.true_positives + facts.false_negatives, 0u);
}

TEST(KbcPipelineTest, ErrorAnalysisReport) {
  deepdive::serving_thread.AssertHeld();
  auto pipeline = KbcPipeline::Build(TinyProfile(), TinyOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Initialize().ok());
  for (const std::string& rule : KbcPipeline::UpdateSequence()) {
    ASSERT_TRUE((*pipeline)->ApplyUpdate(rule).ok());
  }
  const ErrorAnalysis report = (*pipeline)->AnalyzeErrors(0.5, 5);
  EXPECT_GT(report.total_predictions, 0u);
  EXPECT_GT(report.total_correct, 0u);
  EXPECT_LE(report.false_positives.size(), 5u);
  EXPECT_LE(report.false_negatives.size(), 5u);
  // False positives are sorted most-confident-first and are genuinely wrong.
  for (size_t i = 0; i + 1 < report.false_positives.size(); ++i) {
    EXPECT_GE(report.false_positives[i].marginal,
              report.false_positives[i + 1].marginal);
  }
  for (const auto& fp : report.false_positives) {
    EXPECT_FALSE(fp.truth);
    EXPECT_GE(fp.marginal, 0.5);
  }
  // Feature statistics exist, carry learned weights, and indicative features
  // outrank neutral ones in precision.
  ASSERT_FALSE(report.feature_stats.empty());
  double indicative_precision = -1, neutral_precision = -1;
  for (const auto& s : report.feature_stats) {
    if (s.feature.rfind("and_his_wife", 0) == 0 && indicative_precision < 0) {
      indicative_precision = s.precision;
    }
    if (s.feature.rfind("met_with", 0) == 0 && neutral_precision < 0) {
      neutral_precision = s.precision;
    }
  }
  if (indicative_precision >= 0 && neutral_precision >= 0) {
    EXPECT_GT(indicative_precision, neutral_precision);
  }
}

TEST(SnapshotComparisonTest, IncrementalBeatsRerunOnInferenceTime) {
  deepdive::serving_thread.AssertHeld();
  SystemProfile profile = TinyProfile();
  profile.num_documents = 60;
  auto result = RunSnapshotComparison(profile, TinyOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 6u);
  EXPECT_EQ(result->rows[0].rule, "A1");

  // The analysis rule must be dramatically cheaper incrementally.
  EXPECT_GT(result->rows[0].speedup, 1.0);
  // Overall, incremental must beat rerun.
  EXPECT_LT(result->incremental_total_seconds, result->rerun_total_seconds);
  // Quality parity after the full sequence.
  const SnapshotRow& last = result->rows.back();
  EXPECT_NEAR(last.rerun_f1, last.incremental_f1, 0.35);
}

}  // namespace
}  // namespace deepdive::kbc
