// Online program evolution over the wire: codec round-trips for the
// add_rule / retract_rule / mine verbs and their results, program identity
// in the status verb, and the acceptance drill — a tenant whose program
// grows a planted rule end-to-end through the mine verb, dispatched exactly
// as a remote client would (encoded, decoded, routed through the handler
// tier into the writer thread).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/comm/messages.h"
#include "serve/handlers/handlers.h"
#include "serve/service/registry.h"
#include "serve/service/tenant.h"

namespace deepdive::serve {
namespace {

/// Planted-signal program: Pair co-occurs with mostly-positive Match labels.
constexpr char kPlantedProgram[] = R"(
relation Pair(a: int, b: int).
query relation Match(a: int, b: int).
evidence MatchEv(a: int, b: int, l: bool) for Match.
rule CAND: Match(a, b) :- Pair(a, b).
factor PRIOR: Match(a, b) :- Pair(a, b) weight = -0.2 semantics = logical.
)";

std::string PairTsv() {
  std::string tsv;
  for (int i = 1; i <= 8; ++i) {
    tsv += std::to_string(i) + "\t" + std::to_string(i + 100) + "\n";
  }
  return tsv;
}

std::string MatchEvTsv() {
  std::string tsv;
  for (int i = 1; i <= 7; ++i) {
    tsv += std::to_string(i) + "\t" + std::to_string(i + 100) + "\ttrue\n";
  }
  tsv += "8\t108\tfalse\n";
  return tsv;
}

/// Dispatches like a remote client: the request crosses the wire codec both
/// ways, so every end-to-end assertion also covers encode/decode fidelity.
comm::Response DispatchOverWire(const handlers::Dispatcher& dispatcher,
                                const comm::Request& request) {
  auto decoded = comm::DecodeRequest(comm::EncodeRequest(request));
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  const comm::Response response = dispatcher.Dispatch(*decoded);
  auto round = comm::DecodeResponse(comm::EncodeResponse(response));
  EXPECT_TRUE(round.ok()) << round.status().ToString();
  return *round;
}

void CreatePlantedTenant(const handlers::Dispatcher& dispatcher,
                         const std::string& name) {
  comm::CreateTenantRequest create;
  create.name = name;
  create.program = kPlantedProgram;
  create.config.epochs = 5;
  create.data.push_back({"Pair", PairTsv()});
  create.data.push_back({"MatchEv", MatchEvTsv()});
  comm::Request request;
  request.tenant = name;
  request.body = std::move(create);
  const comm::Response response = DispatchOverWire(dispatcher, request);
  ASSERT_TRUE(response.ok()) << response.message;
}

// ---------------------------------------------------------------------------
// Wire codec round-trips.

TEST(RuleVerbCodecTest, RequestsRoundTrip) {
  {
    comm::Request r;
    r.tenant = "kb";
    r.body = comm::AddRuleRequest{"factor F: A(x) :- B(x) weight = 1."};
    EXPECT_EQ(r.verb(), comm::Verb::kAddRule);
    auto decoded = comm::DecodeRequest(comm::EncodeRequest(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->tenant, "kb");
    EXPECT_EQ(std::get<comm::AddRuleRequest>(decoded->body).rule,
              "factor F: A(x) :- B(x) weight = 1.");
  }
  {
    comm::Request r;
    r.tenant = "kb";
    r.body = comm::RetractRuleRequest{"mined_3"};
    EXPECT_EQ(r.verb(), comm::Verb::kRetractRule);
    auto decoded = comm::DecodeRequest(comm::EncodeRequest(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(std::get<comm::RetractRuleRequest>(decoded->body).label,
              "mined_3");
  }
  {
    comm::Request r;
    r.tenant = "kb";
    comm::MineRequest mine;
    mine.max_promotions = 3;
    mine.min_support = 5;
    mine.min_confidence = 0.75;
    mine.max_body_atoms = 1;
    r.body = mine;
    EXPECT_EQ(r.verb(), comm::Verb::kMine);
    auto decoded = comm::DecodeRequest(comm::EncodeRequest(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const auto& body = std::get<comm::MineRequest>(decoded->body);
    EXPECT_EQ(body.max_promotions, 3u);
    EXPECT_EQ(body.min_support, 5);
    EXPECT_DOUBLE_EQ(body.min_confidence, 0.75);
    EXPECT_EQ(body.max_body_atoms, 1u);
  }
}

TEST(RuleVerbCodecTest, ResultsRoundTrip) {
  {
    comm::Response r;
    comm::AddRuleResult body;
    body.epoch = 4;
    body.label = "add_rule:FE1";
    body.strategy = "sampling";
    body.grounding_work = 17;
    body.grounding_seconds = 0.25;
    body.inference_seconds = 0.5;
    body.program_version = 3;
    body.rule_count = 5;
    body.rules_fingerprint = 0xFEEDFACEDEADBEEFull;
    r.body = body;
    auto decoded = comm::DecodeResponse(comm::EncodeResponse(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const auto& out = std::get<comm::AddRuleResult>(decoded->body);
    EXPECT_EQ(out.epoch, 4u);
    EXPECT_EQ(out.label, "add_rule:FE1");
    EXPECT_EQ(out.strategy, "sampling");
    EXPECT_EQ(out.grounding_work, 17u);
    EXPECT_DOUBLE_EQ(out.grounding_seconds, 0.25);
    EXPECT_DOUBLE_EQ(out.inference_seconds, 0.5);
    EXPECT_EQ(out.program_version, 3u);
    EXPECT_EQ(out.rule_count, 5u);
    EXPECT_EQ(out.rules_fingerprint, 0xFEEDFACEDEADBEEFull);
  }
  {
    comm::Response r;
    comm::RetractRuleResult body;
    body.epoch = 5;
    body.strategy = "sampling";
    body.acceptance = 1.0;
    body.program_version = 4;
    body.rule_count = 4;
    body.rules_fingerprint = 42;
    r.body = body;
    auto decoded = comm::DecodeResponse(comm::EncodeResponse(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const auto& out = std::get<comm::RetractRuleResult>(decoded->body);
    EXPECT_EQ(out.epoch, 5u);
    EXPECT_DOUBLE_EQ(out.acceptance, 1.0);
    EXPECT_EQ(out.rule_count, 4u);
  }
  {
    comm::Response r;
    comm::MineResult body;
    body.epoch = 6;
    body.candidates_considered = 12;
    body.candidates_trialed = 4;
    body.promoted = {"mined_0", "mined_1"};
    body.program_version = 6;
    body.rule_count = 7;
    body.rules_fingerprint = 99;
    r.body = body;
    auto decoded = comm::DecodeResponse(comm::EncodeResponse(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const auto& out = std::get<comm::MineResult>(decoded->body);
    EXPECT_EQ(out.candidates_considered, 12u);
    EXPECT_EQ(out.candidates_trialed, 4u);
    EXPECT_EQ(out.promoted, (std::vector<std::string>{"mined_0", "mined_1"}));
    EXPECT_EQ(out.rules_fingerprint, 99u);
  }
  {
    comm::Response r;
    comm::StatusResult body;
    comm::TenantStatus tenant;
    tenant.name = "kb";
    tenant.ready = true;
    tenant.program_version = 7;
    tenant.rule_count = 3;
    tenant.rules_fingerprint = 0xABCDULL;
    body.tenants.push_back(tenant);
    r.body = std::move(body);
    auto decoded = comm::DecodeResponse(comm::EncodeResponse(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const auto& out = std::get<comm::StatusResult>(decoded->body);
    ASSERT_EQ(out.tenants.size(), 1u);
    EXPECT_EQ(out.tenants[0].program_version, 7u);
    EXPECT_EQ(out.tenants[0].rule_count, 3u);
    EXPECT_EQ(out.tenants[0].rules_fingerprint, 0xABCDULL);
  }
}

// ---------------------------------------------------------------------------
// End-to-end through the handler tier into the writer thread.

TEST(RuleVerbEndToEndTest, ProgramEvolvesOverTheWire) {
  service::TenantRegistry registry;
  handlers::Dispatcher dispatcher(&registry);
  CreatePlantedTenant(dispatcher, "kb");

  auto status_of = [&](const std::string& tenant) {
    comm::Request r;
    r.tenant = tenant;
    r.body = comm::StatusRequest{};
    const comm::Response response = DispatchOverWire(dispatcher, r);
    EXPECT_TRUE(response.ok()) << response.message;
    const auto& result = std::get<comm::StatusResult>(response.body);
    EXPECT_EQ(result.tenants.size(), 1u);
    return result.tenants.front();
  };

  const comm::TenantStatus before = status_of("kb");
  EXPECT_TRUE(before.ready);
  EXPECT_EQ(before.rule_count, 2u);  // CAND + PRIOR
  EXPECT_NE(before.rules_fingerprint, 0u);

  // add_rule: grounded against only the new rule's matches (8 Pair rows).
  comm::Request add;
  add.tenant = "kb";
  add.body =
      comm::AddRuleRequest{"factor FE1: Match(a, b) :- Pair(a, b) "
                           "weight = 0.8 semantics = logical."};
  const comm::Response added = DispatchOverWire(dispatcher, add);
  ASSERT_TRUE(added.ok()) << added.message;
  const auto& add_result = std::get<comm::AddRuleResult>(added.body);
  EXPECT_EQ(add_result.label, "add_rule:FE1");
  EXPECT_EQ(add_result.grounding_work, 8u);
  EXPECT_EQ(add_result.rule_count, 3u);
  EXPECT_GT(add_result.program_version, before.program_version);
  EXPECT_NE(add_result.rules_fingerprint, before.rules_fingerprint);

  const comm::TenantStatus grown = status_of("kb");
  EXPECT_EQ(grown.rule_count, 3u);
  EXPECT_EQ(grown.program_version, add_result.program_version);

  // retract_rule: exact journal restore — back to the original identity.
  comm::Request retract;
  retract.tenant = "kb";
  retract.body = comm::RetractRuleRequest{"FE1"};
  const comm::Response retracted = DispatchOverWire(dispatcher, retract);
  ASSERT_TRUE(retracted.ok()) << retracted.message;
  const auto& retract_result =
      std::get<comm::RetractRuleResult>(retracted.body);
  EXPECT_DOUBLE_EQ(retract_result.acceptance, 1.0);
  EXPECT_EQ(retract_result.rule_count, 2u);
  EXPECT_EQ(retract_result.rules_fingerprint, before.rules_fingerprint);

  // Unknown label surfaces as a structured error, not a dead tenant.
  comm::Request bad;
  bad.tenant = "kb";
  bad.body = comm::RetractRuleRequest{"no_such_rule"};
  const comm::Response rejected = DispatchOverWire(dispatcher, bad);
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(status_of("kb").ready);

  registry.StopAll();
}

/// Acceptance drill: the miner promotes a planted rule from synthetic
/// co-occurrence data, end-to-end through the mine wire verb.
TEST(RuleVerbEndToEndTest, MineVerbPromotesPlantedRule) {
  service::TenantRegistry registry;
  handlers::Dispatcher dispatcher(&registry);
  CreatePlantedTenant(dispatcher, "kb");

  comm::Request mine;
  mine.tenant = "kb";
  mine.body = comm::MineRequest{};  // default thresholds fit the planted data
  const comm::Response mined = DispatchOverWire(dispatcher, mine);
  ASSERT_TRUE(mined.ok()) << mined.message;
  const auto& result = std::get<comm::MineResult>(mined.body);
  EXPECT_GE(result.candidates_considered, 1u);
  EXPECT_GE(result.candidates_trialed, 1u);
  ASSERT_EQ(result.promoted.size(), 1u);
  EXPECT_EQ(result.promoted.front(), "mined_0");
  EXPECT_EQ(result.rule_count, 3u);

  // The promoted rule is a first-class program rule: visible in status and
  // retractable over the wire like any hand-written one.
  comm::Request retract;
  retract.tenant = "kb";
  retract.body = comm::RetractRuleRequest{"mined_0"};
  const comm::Response retracted = DispatchOverWire(dispatcher, retract);
  ASSERT_TRUE(retracted.ok()) << retracted.message;
  EXPECT_EQ(std::get<comm::RetractRuleResult>(retracted.body).rule_count, 2u);

  // A second pass remembers the rejection-free promotion history: the same
  // pattern is not re-promoted under a duplicate label after retraction.
  comm::Request again;
  again.tenant = "kb";
  again.body = comm::MineRequest{};
  const comm::Response remined = DispatchOverWire(dispatcher, again);
  ASSERT_TRUE(remined.ok()) << remined.message;

  registry.StopAll();
}

}  // namespace
}  // namespace deepdive::serve
