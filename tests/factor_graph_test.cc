#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "factor/graph_delta.h"
#include "factor/graph_io.h"
#include "factor/semantics.h"

namespace deepdive::factor {
namespace {

TEST(SemanticsTest, GCountValues) {
  EXPECT_DOUBLE_EQ(GCount(Semantics::kLinear, 0), 0.0);
  EXPECT_DOUBLE_EQ(GCount(Semantics::kLinear, 5), 5.0);
  EXPECT_DOUBLE_EQ(GCount(Semantics::kRatio, 0), 0.0);
  EXPECT_NEAR(GCount(Semantics::kRatio, 1), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(GCount(Semantics::kLogical, 0), 0.0);
  EXPECT_DOUBLE_EQ(GCount(Semantics::kLogical, 1), 1.0);
  EXPECT_DOUBLE_EQ(GCount(Semantics::kLogical, 100), 1.0);
}

TEST(SemanticsTest, Names) {
  EXPECT_STREQ(SemanticsName(Semantics::kLinear), "linear");
  EXPECT_STREQ(SemanticsName(Semantics::kRatio), "ratio");
  EXPECT_STREQ(SemanticsName(Semantics::kLogical), "logical");
}

TEST(FactorGraphTest, AddVariablesAndEvidence) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const VarId b = g.AddVariables(3);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(g.NumVariables(), 4u);
  EXPECT_FALSE(g.IsEvidence(0));
  g.SetEvidence(0, true);
  EXPECT_TRUE(g.IsEvidence(0));
  EXPECT_EQ(g.EvidenceValue(0), std::optional<bool>(true));
  g.SetEvidence(0, std::nullopt);
  EXPECT_FALSE(g.IsEvidence(0));
}

TEST(FactorGraphTest, TiedWeightsDeduplicate) {
  FactorGraph g;
  const WeightId w1 = g.GetOrCreateTiedWeight("FE1/and_his_wife");
  const WeightId w2 = g.GetOrCreateTiedWeight("FE1/and_his_wife");
  const WeightId w3 = g.GetOrCreateTiedWeight("FE1/other");
  EXPECT_EQ(w1, w2);
  EXPECT_NE(w1, w3);
  EXPECT_TRUE(g.weight(w1).learnable);
  EXPECT_EQ(g.weight(w1).description, "FE1/and_his_wife");
}

TEST(FactorGraphTest, GroupsAndClauses) {
  FactorGraph g;
  const VarId h = g.AddVariable();
  const VarId b1 = g.AddVariable();
  const VarId b2 = g.AddVariable();
  const WeightId w = g.AddWeight(1.0, false, "test");
  const GroupId grp = g.AddGroup(7, h, w, Semantics::kRatio);
  g.AddClause(grp, {{b1, false}});
  g.AddClause(grp, {{b1, false}, {b2, true}});
  EXPECT_EQ(g.NumGroups(), 1u);
  EXPECT_EQ(g.NumClauses(), 2u);
  EXPECT_EQ(g.NumActiveClauses(), 2u);
  EXPECT_EQ(g.group(grp).rule_id, 7u);
  EXPECT_EQ(g.HeadGroups(h).size(), 1u);
  EXPECT_EQ(g.BodyRefs(b1).size(), 2u);
  EXPECT_EQ(g.BodyRefs(b2).size(), 1u);
  EXPECT_TRUE(g.BodyRefs(b2)[0].negated);
  EXPECT_EQ(g.GroupsForWeight(w).size(), 1u);
}

TEST(FactorGraphTest, SatisfiedClausesAndLogWeight) {
  FactorGraph g;
  const VarId h = g.AddVariable();
  const VarId b = g.AddVariable();
  const WeightId w = g.AddWeight(2.0, false);
  const GroupId grp = g.AddGroup(0, h, w, Semantics::kLinear);
  g.AddClause(grp, {{b, false}});
  g.AddClause(grp, {});  // always satisfied

  std::vector<bool> values = {true, false};
  auto value_of = [&](VarId v) { return values[v]; };
  EXPECT_EQ(g.SatisfiedClauses(grp, value_of), 1);
  EXPECT_DOUBLE_EQ(g.GroupLogWeight(grp, value_of), 2.0 * 1.0 * 1.0);

  values[1] = true;
  EXPECT_EQ(g.SatisfiedClauses(grp, value_of), 2);
  values[0] = false;
  EXPECT_DOUBLE_EQ(g.GroupLogWeight(grp, value_of), 2.0 * -1.0 * 2.0);
  EXPECT_DOUBLE_EQ(g.TotalLogWeight(value_of), -4.0);
}

TEST(FactorGraphTest, DeactivationRemovesContribution) {
  FactorGraph g;
  const VarId h = g.AddVariable();
  const WeightId w = g.AddWeight(3.0, false);
  const GroupId grp = g.AddSimpleFactor(h, {}, w);
  auto value_of = [](VarId) { return true; };
  EXPECT_DOUBLE_EQ(g.TotalLogWeight(value_of), 3.0);
  g.DeactivateGroup(grp);
  EXPECT_DOUBLE_EQ(g.TotalLogWeight(value_of), 0.0);
  EXPECT_EQ(g.NumActiveClauses(), 0u);
}

TEST(FactorGraphTest, ClauseDeactivation) {
  FactorGraph g;
  const VarId h = g.AddVariable();
  const WeightId w = g.AddWeight(1.0, false);
  const GroupId grp = g.AddGroup(0, h, w, Semantics::kLinear);
  g.AddClause(grp, {});
  const ClauseId c2 = g.AddClause(grp, {});
  auto value_of = [](VarId) { return true; };
  EXPECT_EQ(g.SatisfiedClauses(grp, value_of), 2);
  g.DeactivateClause(c2);
  EXPECT_EQ(g.SatisfiedClauses(grp, value_of), 1);
  EXPECT_EQ(g.NumActiveClauses(), 1u);
}

TEST(FactorGraphTest, FindActiveClause) {
  FactorGraph g;
  const VarId h = g.AddVariable();
  const VarId b = g.AddVariable();
  const WeightId w = g.AddWeight(1.0, false);
  const GroupId grp = g.AddGroup(0, h, w, Semantics::kLinear);
  const ClauseId c = g.AddClause(grp, {{b, false}});
  EXPECT_EQ(g.FindActiveClause(grp, {{b, false}}), c);
  EXPECT_EQ(g.FindActiveClause(grp, {{b, true}}), kNoClause);
  g.DeactivateClause(c);
  EXPECT_EQ(g.FindActiveClause(grp, {{b, false}}), kNoClause);
}

TEST(FactorGraphTest, FindActiveClauseDuplicatesAndGroups) {
  // The hash-indexed lookup must keep returning the *earliest* active clause
  // among duplicates, and never match a clause from another group.
  FactorGraph g;
  const VarId h1 = g.AddVariable();
  const VarId h2 = g.AddVariable();
  const VarId b = g.AddVariable();
  const WeightId w = g.AddWeight(1.0, false);
  const GroupId g1 = g.AddGroup(0, h1, w, Semantics::kLinear);
  const GroupId g2 = g.AddGroup(0, h2, w, Semantics::kLinear);
  const ClauseId c1 = g.AddClause(g1, {{b, false}});
  const ClauseId c2 = g.AddClause(g1, {{b, false}});
  const ClauseId other = g.AddClause(g2, {{b, false}});
  EXPECT_EQ(g.FindActiveClause(g1, {{b, false}}), c1);
  g.DeactivateClause(c1);
  EXPECT_EQ(g.FindActiveClause(g1, {{b, false}}), c2);
  g.DeactivateClause(c2);
  EXPECT_EQ(g.FindActiveClause(g1, {{b, false}}), kNoClause);
  EXPECT_EQ(g.FindActiveClause(g2, {{b, false}}), other);
}

TEST(FactorGraphTest, AddClausesBulk) {
  FactorGraph g;
  const VarId h = g.AddVariable();
  const VarId b1 = g.AddVariable();
  const VarId b2 = g.AddVariable();
  const WeightId w = g.AddWeight(1.0, false);
  const GroupId grp = g.AddGroup(0, h, w, Semantics::kLinear);
  g.ReserveClauses(3);
  const ClauseId first = g.AddClauses(grp, {{{b1, false}}, {{b2, true}}, {}});
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(g.NumClauses(), 3u);
  EXPECT_EQ(g.clause(first).literals.size(), 1u);
  EXPECT_EQ(g.clause(first + 1).literals[0].var, b2);
  EXPECT_TRUE(g.clause(first + 2).literals.empty());
  EXPECT_EQ(g.FindActiveClause(grp, {{b2, true}}), first + 1);
  EXPECT_EQ(g.AddClauses(grp, {}), kNoClause);
}

TEST(FactorGraphTest, Neighbors) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const VarId b = g.AddVariable();
  const VarId c = g.AddVariable();
  const WeightId w = g.AddWeight(1.0, false);
  g.AddSimpleFactor(a, {{b, false}}, w);
  g.AddSimpleFactor(b, {{c, false}}, w);
  EXPECT_EQ(g.Neighbors(a), (std::vector<VarId>{b}));
  EXPECT_EQ(g.Neighbors(b), (std::vector<VarId>{a, c}));
  EXPECT_EQ(g.Neighbors(c), (std::vector<VarId>{b}));
}

TEST(GraphDeltaTest, EmptyAndClassification) {
  GraphDelta delta;
  EXPECT_TRUE(delta.empty());
  EXPECT_FALSE(delta.structure_changed());
  delta.weight_changes.push_back({0, 0.0, 1.0});
  EXPECT_FALSE(delta.structure_changed());
  EXPECT_FALSE(delta.empty());
  delta.new_groups.push_back(0);
  EXPECT_TRUE(delta.structure_changed());
  GraphDelta other;
  other.evidence_changes.push_back({1, std::nullopt, true});
  delta.Merge(other);
  EXPECT_TRUE(delta.evidence_changed());
}

TEST(GraphDeltaTest, DeltaLogDensityRatioNewGroup) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const WeightId w = g.AddWeight(1.5, false);
  const GroupId grp = g.AddSimpleFactor(a, {}, w);
  GraphDelta delta;
  delta.new_groups.push_back(grp);
  auto all_true = [](VarId) { return true; };
  auto all_false = [](VarId) { return false; };
  EXPECT_DOUBLE_EQ(DeltaLogDensityRatio(g, delta, all_true), 1.5);
  EXPECT_DOUBLE_EQ(DeltaLogDensityRatio(g, delta, all_false), -1.5);
}

TEST(GraphDeltaTest, DeltaLogDensityRatioEvidenceConflict) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  g.SetEvidence(a, true);
  GraphDelta delta;
  delta.evidence_changes.push_back({a, std::nullopt, true});
  auto violates = [](VarId) { return false; };
  EXPECT_TRUE(std::isinf(DeltaLogDensityRatio(g, delta, violates)));
  auto satisfies = [](VarId) { return true; };
  EXPECT_DOUBLE_EQ(DeltaLogDensityRatio(g, delta, satisfies), 0.0);
}

TEST(GraphDeltaTest, DeltaLogDensityRatioModifiedGroup) {
  FactorGraph g;
  const VarId h = g.AddVariable();
  const VarId b = g.AddVariable();
  const WeightId w = g.AddWeight(2.0, false);
  const GroupId grp = g.AddGroup(0, h, w, Semantics::kLinear);
  const ClauseId c_old = g.AddClause(grp, {});
  // Update: clause {b} added, empty clause removed.
  const ClauseId c_new = g.AddClause(grp, {{b, false}});
  g.DeactivateClause(c_old);
  GraphDelta delta;
  delta.modified_groups.push_back({grp, {c_new}, {c_old}});

  // World: h=true, b=false. New n = 0, old n = 1. Ratio = 2*(0 - 1) = -2.
  std::vector<bool> values = {true, false};
  auto value_of = [&](VarId v) { return values[v]; };
  EXPECT_DOUBLE_EQ(DeltaLogDensityRatio(g, delta, value_of), -2.0);

  // World: h=true, b=true. New n = 1, old n = 1. Ratio = 0.
  values[1] = true;
  EXPECT_DOUBLE_EQ(DeltaLogDensityRatio(g, delta, value_of), 0.0);
}

TEST(GraphDeltaTest, DeltaLogDensityRatioWeightChange) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const WeightId w = g.AddWeight(2.0, true);
  g.AddSimpleFactor(a, {}, w);
  GraphDelta delta;
  delta.weight_changes.push_back({w, 0.5, 2.0});
  auto all_true = [](VarId) { return true; };
  EXPECT_DOUBLE_EQ(DeltaLogDensityRatio(g, delta, all_true), 1.5);
}

TEST(GraphIoTest, RoundTrip) {
  FactorGraph g;
  const VarId a = g.AddVariable();
  const VarId b = g.AddVariable();
  g.SetEvidence(b, false);
  const WeightId w1 = g.AddWeight(0.5, true, "w1");
  const WeightId w2 = g.GetOrCreateTiedWeight("FE1/x");
  const GroupId g1 = g.AddGroup(1, a, w1, Semantics::kRatio);
  g.AddClause(g1, {{b, true}});
  const GroupId g2 = g.AddGroup(2, b, w2, Semantics::kLogical);
  const ClauseId c = g.AddClause(g2, {{a, false}});
  g.DeactivateClause(c);
  g.DeactivateGroup(g2);

  const std::string path = ::testing::TempDir() + "/graph_roundtrip.bin";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // v2 snapshots compact retracted elements out, so the loaded graph matches
  // the compiled round-trip of the original (same distribution, inactive
  // clause/group dropped) rather than the original structure.
  EXPECT_TRUE(GraphsEqual(CompiledGraph::Compile(g).Decompile(), *loaded));
  EXPECT_EQ(loaded->NumVariables(), g.NumVariables());
  EXPECT_EQ(loaded->NumWeights(), g.NumWeights());
  EXPECT_EQ(loaded->NumGroups(), 1u);   // g2 retracted, g1 survives
  EXPECT_EQ(loaded->NumClauses(), 1u);  // c retracted, g1's clause survives
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a graph", f);
  fclose(f);
  EXPECT_FALSE(LoadGraph(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadGraph("/nonexistent/path.bin").ok());
}

}  // namespace
}  // namespace deepdive::factor
