#include <gtest/gtest.h>

#include <set>

#include "dsl/program.h"
#include "engine/view_maintenance.h"
#include "storage/database.h"
#include "util/random.h"

namespace deepdive::engine {
namespace {

constexpr char kTwoLevel[] = R"(
  relation P(s: int, m: int).
  relation Q(m: int).
  relation Mid(a: int, b: int).
  relation Top(a: int).
  rule M: Mid(a, b) :- P(s, a), P(s, b), a != b.
  rule T: Top(a) :- Mid(a, b), Q(b).
)";

struct Fixture {
  dsl::Program program;
  Database db;
  std::unique_ptr<ViewMaintainer> vm;

  explicit Fixture(const std::string& source) {
    auto p = dsl::CompileProgram(source);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    program = std::move(p).value();
    EXPECT_TRUE(program.InstantiateSchema(&db).ok());
    vm = std::make_unique<ViewMaintainer>(&program, &db);
  }

  std::set<std::string> Rows(const std::string& table) {
    std::set<std::string> out;
    db.GetTable(table)->Scan([&](RowId, const Tuple& t) { out.insert(TupleToString(t)); });
    return out;
  }
};

TEST(ViewMaintainerTest, InitializeEvaluatesBottomUp) {
  Fixture f(kTwoLevel);
  ASSERT_TRUE(f.db.GetTable("P")->Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(f.db.GetTable("P")->Insert({Value(1), Value(11)}).ok());
  ASSERT_TRUE(f.db.GetTable("Q")->Insert({Value(11)}).ok());
  ASSERT_TRUE(f.vm->Initialize().ok());
  EXPECT_EQ(f.Rows("Mid"), (std::set<std::string>{"(10, 11)", "(11, 10)"}));
  EXPECT_EQ(f.Rows("Top"), (std::set<std::string>{"(10)"}));
}

TEST(ViewMaintainerTest, InsertPropagates) {
  Fixture f(kTwoLevel);
  ASSERT_TRUE(f.vm->Initialize().ok());
  RelationDeltas external;
  external["P"].Add({Value(1), Value(10)}, 1);
  external["P"].Add({Value(1), Value(11)}, 1);
  external["Q"].Add({Value(11)}, 1);
  auto deltas = f.vm->ApplyUpdate(external);
  ASSERT_TRUE(deltas.ok()) << deltas.status().ToString();
  EXPECT_EQ(f.Rows("Top"), (std::set<std::string>{"(10)"}));
  EXPECT_EQ(deltas->at("Top").Count({Value(10)}), 1);
}

TEST(ViewMaintainerTest, DeletePropagatesWithCounts) {
  Fixture f(kTwoLevel);
  // Two derivations of Mid(10,11): sentences 1 and 2.
  ASSERT_TRUE(f.db.GetTable("P")->Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(f.db.GetTable("P")->Insert({Value(1), Value(11)}).ok());
  ASSERT_TRUE(f.db.GetTable("P")->Insert({Value(2), Value(10)}).ok());
  ASSERT_TRUE(f.db.GetTable("P")->Insert({Value(2), Value(11)}).ok());
  ASSERT_TRUE(f.db.GetTable("Q")->Insert({Value(11)}).ok());
  ASSERT_TRUE(f.vm->Initialize().ok());
  EXPECT_EQ(f.vm->DerivationCount("Mid", {Value(10), Value(11)}), 2);

  // Removing sentence 2's tuples removes one derivation; Mid survives.
  RelationDeltas external;
  external["P"].Add({Value(2), Value(10)}, -1);
  external["P"].Add({Value(2), Value(11)}, -1);
  auto deltas = f.vm->ApplyUpdate(external);
  ASSERT_TRUE(deltas.ok());
  EXPECT_EQ(f.vm->DerivationCount("Mid", {Value(10), Value(11)}), 1);
  EXPECT_TRUE(f.Rows("Mid").count("(10, 11)"));
  EXPECT_EQ(deltas->count("Mid"), 0u);  // no set-level change

  // Removing sentence 1's tuples kills it, and Top with it.
  RelationDeltas external2;
  external2["P"].Add({Value(1), Value(10)}, -1);
  external2["P"].Add({Value(1), Value(11)}, -1);
  auto deltas2 = f.vm->ApplyUpdate(external2);
  ASSERT_TRUE(deltas2.ok());
  EXPECT_FALSE(f.Rows("Mid").count("(10, 11)"));
  EXPECT_EQ(f.Rows("Top").size(), 0u);
  EXPECT_EQ(deltas2->at("Top").Count({Value(10)}), -1);
}

TEST(ViewMaintainerTest, AddRuleEvaluatesAndPropagates) {
  Fixture f(R"(
    relation A(x: int).
    relation B(x: int).
    relation C(x: int).
    rule C(x) :- B(x).
  )");
  ASSERT_TRUE(f.db.GetTable("A")->Insert({Value(1)}).ok());
  ASSERT_TRUE(f.vm->Initialize().ok());
  EXPECT_EQ(f.Rows("B").size(), 0u);

  auto parsed = dsl::CompileProgram(R"(
    relation A(x: int).
    relation B(x: int).
    rule NEW: B(x) :- A(x).
  )");
  ASSERT_TRUE(parsed.ok());
  auto deltas = f.vm->AddRule(parsed->deductive_rules()[0]);
  ASSERT_TRUE(deltas.ok()) << deltas.status().ToString();
  EXPECT_EQ(f.Rows("B"), (std::set<std::string>{"(1)"}));
  EXPECT_EQ(f.Rows("C"), (std::set<std::string>{"(1)"}));
}

TEST(ViewMaintainerTest, RemoveRuleRetracts) {
  Fixture f(R"(
    relation A(x: int).
    relation B(x: int).
    rule R1: B(x) :- A(x).
  )");
  ASSERT_TRUE(f.db.GetTable("A")->Insert({Value(1)}).ok());
  ASSERT_TRUE(f.vm->Initialize().ok());
  EXPECT_EQ(f.Rows("B").size(), 1u);
  auto deltas = f.vm->RemoveRule("R1");
  ASSERT_TRUE(deltas.ok()) << deltas.status().ToString();
  EXPECT_EQ(f.Rows("B").size(), 0u);
  EXPECT_FALSE(f.vm->RemoveRule("R1").ok());
}

TEST(ViewMaintainerTest, RecursiveRuleRejected) {
  Fixture f(R"(
    relation E(a: int, b: int).
    relation T(a: int, b: int).
    rule T(a, b) :- E(a, b).
    rule T(a, c) :- T(a, b), E(b, c).
  )");
  EXPECT_FALSE(f.vm->Initialize().ok());
}

TEST(ViewMaintainerTest, ExternalInsertOnDerivedRelationCounts) {
  // A derived tuple can also be asserted externally; deleting the rule-based
  // derivation must not remove it.
  Fixture f(R"(
    relation A(x: int).
    relation B(x: int).
    rule B(x) :- A(x).
  )");
  ASSERT_TRUE(f.vm->Initialize().ok());
  RelationDeltas external;
  external["A"].Add({Value(1)}, 1);
  external["B"].Add({Value(1)}, 1);  // direct assertion too
  ASSERT_TRUE(f.vm->ApplyUpdate(external).ok());
  EXPECT_EQ(f.vm->DerivationCount("B", {Value(1)}), 2);

  RelationDeltas retract;
  retract["A"].Add({Value(1)}, -1);
  ASSERT_TRUE(f.vm->ApplyUpdate(retract).ok());
  EXPECT_TRUE(f.Rows("B").count("(1)"));  // external derivation survives
}

// Property: after an arbitrary random update sequence, every view equals
// what from-scratch evaluation would produce.
class ViewMaintenanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ViewMaintenanceProperty, IncrementalEqualsFromScratch) {
  Rng rng(GetParam());

  auto make_fixture = []() { return std::make_unique<Fixture>(kTwoLevel); };
  auto inc = make_fixture();
  ASSERT_TRUE(inc->vm->Initialize().ok());

  // Mirror of base-table contents, to rebuild the scratch copy at the end.
  std::set<std::pair<int64_t, int64_t>> p_rows;
  std::set<int64_t> q_rows;

  for (int step = 0; step < 8; ++step) {
    RelationDeltas external;
    for (int i = 0; i < 4; ++i) {
      const int64_t s = static_cast<int64_t>(rng.UniformInt(4));
      const int64_t m = static_cast<int64_t>(rng.UniformInt(5));
      if (p_rows.count({s, m})) {
        if (rng.Bernoulli(0.4)) {
          external["P"].Add({Value(s), Value(m)}, -1);
          p_rows.erase({s, m});
        }
      } else {
        external["P"].Add({Value(s), Value(m)}, 1);
        p_rows.insert({s, m});
      }
    }
    const int64_t qv = static_cast<int64_t>(rng.UniformInt(5));
    if (q_rows.count(qv)) {
      external["Q"].Add({Value(qv)}, -1);
      q_rows.erase(qv);
    } else {
      external["Q"].Add({Value(qv)}, 1);
      q_rows.insert(qv);
    }
    ASSERT_TRUE(inc->vm->ApplyUpdate(external).ok());
  }

  // From-scratch evaluation over the final base state.
  auto scratch = make_fixture();
  for (const auto& [s, m] : p_rows) {
    ASSERT_TRUE(scratch->db.GetTable("P")->Insert({Value(s), Value(m)}).ok());
  }
  for (int64_t q : q_rows) {
    ASSERT_TRUE(scratch->db.GetTable("Q")->Insert({Value(q)}).ok());
  }
  ASSERT_TRUE(scratch->vm->Initialize().ok());

  for (const char* view : {"Mid", "Top"}) {
    EXPECT_EQ(inc->Rows(view), scratch->Rows(view)) << view << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ViewMaintenanceProperty,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28, 29, 30));

}  // namespace
}  // namespace deepdive::engine
