#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "factor/factor_graph.h"
#include "inference/exact.h"
#include "inference/gibbs.h"
#include "inference/parallel_gibbs.h"
#include "inference/world.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace deepdive::inference {
namespace {

using factor::FactorGraph;
using factor::GroupId;
using factor::Semantics;
using factor::VarId;
using factor::WeightId;

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    // ordering: relaxed — exact atomic count; Wait()'s join edge publishes it.
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, InlineModeStartsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.shards(), 1u);
  int ran = 0;
  pool.Submit([&ran] { ++ran; });  // runs inline, no Wait needed
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (size_t n : {0u, 1u, 5u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](size_t /*shard*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          // ordering: relaxed — disjoint shards; ParallelFor's join publishes.
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " n=" << n
                                     << " threads=" << threads;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForShardsAreStable) {
  // Shard s must map to the same range every call (per-shard RNG streams
  // depend on it).
  ThreadPool pool(4);
  std::vector<size_t> first(100, 0), second(100, 0);
  pool.ParallelFor(100, [&](size_t shard, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) first[i] = shard;
  });
  pool.ParallelFor(100, [&](size_t shard, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) second[i] = shard;
  });
  EXPECT_EQ(first, second);
}

TEST(ThreadPoolTest, WaitSynchronizesPlainWrites) {
  ThreadPool pool(4);
  std::vector<int> data(1000, 0);
  pool.ParallelFor(data.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) data[i] = static_cast<int>(i);
  });
  // ParallelFor waited; plain reads must observe every write.
  for (size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], static_cast<int>(i));
}

// ---- graph fixtures --------------------------------------------------------

/// Random small graph: a mix of priors and grouped multi-clause factors
/// (same construction as world_gibbs_test).
FactorGraph RandomGraph(uint64_t seed, size_t num_vars, size_t num_groups,
                        Semantics semantics, size_t evidence_count = 0) {
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(num_vars);
  for (size_t i = 0; i < num_groups; ++i) {
    const VarId head = static_cast<VarId>(rng.UniformInt(num_vars));
    const WeightId w = g.AddWeight(rng.Uniform(-1.0, 1.0), false);
    const GroupId grp = g.AddGroup(static_cast<uint32_t>(i), head, w, semantics);
    const size_t clauses = 1 + rng.UniformInt(3);
    for (size_t c = 0; c < clauses; ++c) {
      std::vector<factor::Literal> lits;
      const size_t n_lits = rng.UniformInt(3);
      for (size_t l = 0; l < n_lits; ++l) {
        VarId v = static_cast<VarId>(rng.UniformInt(num_vars));
        if (v == head) continue;
        bool dup = false;
        for (const auto& lit : lits) dup |= lit.var == v;
        if (dup) continue;
        lits.push_back({v, rng.Bernoulli(0.3)});
      }
      g.AddClause(grp, lits);
    }
  }
  for (size_t e = 0; e < evidence_count; ++e) {
    g.SetEvidence(static_cast<VarId>(rng.UniformInt(num_vars)), rng.Bernoulli(0.5));
  }
  return g;
}

/// Chain-structured pairwise graph, large enough that every worker owns a
/// non-trivial shard.
FactorGraph ChainGraph(size_t n, uint64_t seed) {
  FactorGraph g;
  Rng rng(seed);
  g.AddVariables(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddSimpleFactor(static_cast<VarId>(i), {{static_cast<VarId>(i + 1), false}},
                      g.AddWeight(rng.Uniform(-0.8, 0.8), false));
  }
  for (size_t i = 0; i < n; ++i) {
    g.AddSimpleFactor(static_cast<VarId>(i), {},
                      g.AddWeight(rng.Uniform(-0.5, 0.5), false));
  }
  return g;
}

// ---- AtomicWorld -----------------------------------------------------------

TEST(AtomicWorldTest, FlipMaintainsStatsIncrementally) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    FactorGraph g = RandomGraph(seed, 10, 12, Semantics::kLinear);
    AtomicWorld aw(&g);
    World w(&g);
    Rng rng(seed + 5);
    aw.InitValues(&rng, true);
    // Mirror the values into the reference world.
    w.LoadBits(aw.ToBits());
    Rng flip_rng(seed + 9);
    for (int step = 0; step < 200; ++step) {
      const VarId v = static_cast<VarId>(flip_rng.UniformInt(10));
      const bool value = flip_rng.Bernoulli(0.5);
      aw.Flip(v, value);
      w.Flip(v, value);
    }
    for (GroupId grp = 0; grp < g.NumGroups(); ++grp) {
      EXPECT_EQ(aw.GroupSat(grp), w.GroupSat(grp)) << "group " << grp;
    }
    for (factor::ClauseId c = 0; c < g.NumClauses(); ++c) {
      EXPECT_EQ(aw.ClauseUnsat(c), w.ClauseUnsat(c)) << "clause " << c;
    }
  }
}

TEST(AtomicWorldTest, LoadBitsPrefixMatchesWorld) {
  FactorGraph g = RandomGraph(7, 12, 10, Semantics::kRatio, /*evidence_count=*/3);
  BitVector bits(8);
  for (size_t i = 0; i < 8; ++i) bits.Set(i, i % 3 == 0);

  AtomicWorld aw(&g);
  World w(&g);
  for (bool apply_evidence : {true, false}) {
    aw.LoadBitsPrefix(bits, /*fill=*/true, apply_evidence);
    w.LoadBitsPrefix(bits, /*fill=*/true, apply_evidence);
    EXPECT_EQ(aw.ToBits(), w.ToBits()) << "apply_evidence=" << apply_evidence;
    for (GroupId grp = 0; grp < g.NumGroups(); ++grp) {
      EXPECT_EQ(aw.GroupSat(grp), w.GroupSat(grp));
    }
  }
}

TEST(AtomicWorldTest, WeightFeatureMatchesWorld) {
  FactorGraph g = RandomGraph(13, 10, 14, Semantics::kLogical);
  AtomicWorld aw(&g);
  World w(&g);
  Rng rng(99);
  aw.InitValues(&rng, true);
  w.LoadBits(aw.ToBits());
  for (WeightId id = 0; id < g.NumWeights(); ++id) {
    EXPECT_DOUBLE_EQ(aw.WeightFeature(id), w.WeightFeature(id));
  }
}

// ---- ParallelGibbsSampler: sequential parity -------------------------------

TEST(ParallelGibbsTest, SingleThreadMatchesSequentialExactly) {
  for (uint64_t seed : {3u, 17u}) {
    FactorGraph g = RandomGraph(seed, 9, 11, Semantics::kLinear, 2);
    GibbsOptions options;
    options.burn_in_sweeps = 20;
    options.sample_sweeps = 100;
    options.seed = seed * 31 + 1;

    const auto sequential = GibbsSampler(&g).EstimateMarginals(options);
    const auto parallel = ParallelGibbsSampler(&g, 1).EstimateMarginals(options);

    ASSERT_EQ(parallel.marginals.size(), sequential.marginals.size());
    for (size_t v = 0; v < sequential.marginals.size(); ++v) {
      EXPECT_DOUBLE_EQ(parallel.marginals[v], sequential.marginals[v]) << "var " << v;
    }
    EXPECT_EQ(parallel.sweeps, sequential.sweeps);
    EXPECT_EQ(parallel.flips, sequential.flips);
  }
}

TEST(ParallelGibbsTest, SingleThreadDrawSamplesMatchesSequential) {
  FactorGraph g = RandomGraph(11, 6, 6, Semantics::kLinear);
  GibbsOptions options;
  options.burn_in_sweeps = 10;
  options.seed = 33;
  const auto sequential = GibbsSampler(&g).DrawSamples(5, 2, options);
  const auto parallel = ParallelGibbsSampler(&g, 1).DrawSamples(5, 2, options);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i], sequential[i]) << "sample " << i;
  }
}

TEST(ParallelGibbsTest, SampleChainStopsOnCallbackFalse) {
  FactorGraph g = ChainGraph(20, 5);
  GibbsOptions options;
  options.burn_in_sweeps = 2;
  for (size_t threads : {1u, 4u}) {
    ParallelGibbsSampler sampler(&g, threads);
    size_t emitted = 0;
    sampler.SampleChain(options, /*count=*/50, /*thin=*/1, [&](const BitVector&) {
      ++emitted;
      return emitted < 3;
    });
    EXPECT_EQ(emitted, 3u) << "threads=" << threads;
  }
}

// ---- ParallelGibbsSampler: multi-threaded correctness ----------------------

TEST(ParallelGibbsTest, HogwildStatsStayExactUnderConcurrentSweeps) {
  // After any number of concurrent Hogwild sweeps the atomically-maintained
  // statistics must equal a from-scratch recomputation: lost updates would
  // permanently corrupt the chain.
  FactorGraph g = ChainGraph(500, 21);
  ParallelGibbsSampler sampler(&g, 4);
  AtomicWorld world(&g);
  Rng init_rng(7);
  world.InitValues(&init_rng, true);
  std::vector<Rng> rngs = sampler.MakeRngStreams(7);
  for (int i = 0; i < 20; ++i) sampler.Sweep(&world, &rngs);

  World reference(&g);
  reference.LoadBits(world.ToBits());
  for (GroupId grp = 0; grp < g.NumGroups(); ++grp) {
    ASSERT_EQ(world.GroupSat(grp), reference.GroupSat(grp)) << "group " << grp;
  }
}

TEST(ParallelGibbsTest, RecomputeStatsPublishesToHogwildWorkers) {
  // Regression for the relaxed-ordering publication in RecomputeStats: the
  // sharded scan writes clause/group statistics with relaxed stores, and
  // Hogwild workers then read them with relaxed loads. The ParallelFor join
  // plus the pool's submit path are the only happens-before edges (see the
  // publication-contract comment in RecomputeStats); under the TSan CI job
  // this test fails if either edge ever disappears. Repeated
  // LoadBitsPrefix -> Sweep round trips maximize the publish/consume
  // interleavings; the statistics must stay exact throughout.
  FactorGraph g = ChainGraph(400, 17);
  ParallelGibbsSampler sampler(&g, 4);
  AtomicWorld world(&g);
  std::vector<Rng> rngs = sampler.MakeRngStreams(23);
  Rng bits_rng(5);
  for (int round = 0; round < 10; ++round) {
    BitVector bits(g.NumVariables());
    for (size_t v = 0; v < g.NumVariables(); ++v) {
      bits.Set(v, bits_rng.Bernoulli(0.5));
    }
    // Sharded stats rebuild on the sampler's own pool, immediately consumed
    // by Hogwild sweeps on that pool.
    world.LoadBitsPrefix(bits, /*fill=*/false, /*apply_evidence=*/true,
                         sampler.pool());
    for (int i = 0; i < 3; ++i) sampler.Sweep(&world, &rngs);

    World reference(&g);
    reference.LoadBits(world.ToBits());
    for (GroupId grp = 0; grp < g.NumGroups(); ++grp) {
      ASSERT_EQ(world.GroupSat(grp), reference.GroupSat(grp))
          << "round " << round << " group " << grp;
    }
    for (factor::ClauseId c = 0; c < g.NumClauses(); ++c) {
      ASSERT_EQ(world.ClauseUnsat(c), reference.ClauseUnsat(c))
          << "round " << round << " clause " << c;
    }
  }
}

TEST(ParallelGibbsTest, MultiThreadMarginalsCloseToSequential) {
  FactorGraph g = ChainGraph(200, 41);
  GibbsOptions options;
  options.burn_in_sweeps = 100;
  options.sample_sweeps = 2000;
  options.seed = 5;

  const auto sequential = GibbsSampler(&g).EstimateMarginals(options);
  const auto parallel = ParallelGibbsSampler(&g, 4).EstimateMarginals(options);

  ASSERT_EQ(parallel.marginals.size(), sequential.marginals.size());
  // Both are finite-sample MCMC estimates of the same distribution; bound
  // the mean absolute deviation tightly and individual ones generously.
  double max_diff = 0.0, sum_diff = 0.0;
  for (size_t v = 0; v < sequential.marginals.size(); ++v) {
    const double d = std::abs(parallel.marginals[v] - sequential.marginals[v]);
    max_diff = std::max(max_diff, d);
    sum_diff += d;
  }
  EXPECT_LT(sum_diff / static_cast<double>(sequential.marginals.size()), 0.02);
  EXPECT_LT(max_diff, 0.10);
}

TEST(ParallelGibbsTest, MultiThreadMarginalsConvergeToExact) {
  // The end-to-end quality bar: Hogwild marginals against brute-force
  // enumeration on a small graph.
  FactorGraph g = RandomGraph(2, 7, 9, Semantics::kLinear, 2);
  auto exact = ExactInference(g);
  ASSERT_TRUE(exact.ok());

  GibbsOptions options;
  options.burn_in_sweeps = 300;
  options.sample_sweeps = 6000;
  options.seed = 15;
  const auto result = ParallelGibbsSampler(&g, 4).EstimateMarginals(options);
  for (VarId v = 0; v < g.NumVariables(); ++v) {
    EXPECT_NEAR(result.marginals[v], exact->marginals[v], 0.04) << "var " << v;
  }
}

TEST(ParallelGibbsTest, EvidenceNeverResampledAcrossThreads) {
  FactorGraph g = ChainGraph(100, 3);
  g.SetEvidence(0, false);
  g.SetEvidence(50, true);
  g.SetEvidence(99, false);
  GibbsOptions options;
  options.sample_sweeps = 50;
  const auto result = ParallelGibbsSampler(&g, 4).EstimateMarginals(options);
  EXPECT_DOUBLE_EQ(result.marginals[0], 0.0);
  EXPECT_DOUBLE_EQ(result.marginals[50], 1.0);
  EXPECT_DOUBLE_EQ(result.marginals[99], 0.0);
}

TEST(ParallelGibbsTest, SweepVarsOnlyTouchesGivenVars) {
  FactorGraph g = ChainGraph(60, 9);
  ParallelGibbsSampler sampler(&g, 4);
  AtomicWorld world(&g);
  Rng init_rng(2);
  world.InitValues(&init_rng, true);
  const BitVector before = world.ToBits();

  std::vector<VarId> vars;
  for (VarId v = 10; v < 30; ++v) vars.push_back(v);
  std::vector<Rng> rngs = sampler.MakeRngStreams(77);
  for (int i = 0; i < 10; ++i) sampler.SweepVars(&world, &rngs, vars);

  const BitVector after = world.ToBits();
  for (VarId v = 0; v < 60; ++v) {
    if (v < 10 || v >= 30) {
      EXPECT_EQ(after.Get(v), before.Get(v)) << "untouched var " << v << " changed";
    }
  }
}

TEST(ParallelGibbsTest, ZeroThreadsMeansHardwareConcurrency) {
  FactorGraph g = ChainGraph(10, 1);
  ParallelGibbsSampler sampler(&g, 0);
  EXPECT_GE(sampler.num_threads(), 1u);
}

}  // namespace
}  // namespace deepdive::inference
