#include <gtest/gtest.h>

#include "factor/factor_graph.h"
#include "inference/learner.h"
#include "util/random.h"

namespace deepdive::inference {
namespace {

using factor::FactorGraph;
using factor::Semantics;
using factor::VarId;
using factor::WeightId;

/// Builds a logistic-regression-style graph (Example 2.6): objects with two
/// features; feature "pos" implies the class, feature "neg" implies not.
/// All objects are labeled (evidence) so the learner must recover weights
/// with the right signs.
struct PlantedModel {
  FactorGraph graph;
  WeightId w_pos = 0;
  WeightId w_neg = 0;
  std::vector<VarId> vars;
};

PlantedModel BuildPlanted(size_t objects, uint64_t seed) {
  PlantedModel m;
  Rng rng(seed);
  m.w_pos = m.graph.GetOrCreateTiedWeight("f/pos");
  m.w_neg = m.graph.GetOrCreateTiedWeight("f/neg");
  for (size_t i = 0; i < objects; ++i) {
    const VarId v = m.graph.AddVariable();
    m.vars.push_back(v);
    const bool label = rng.Bernoulli(0.5);
    // Feature assignment correlates deterministically with the label.
    m.graph.AddSimpleFactor(v, {}, label ? m.w_pos : m.w_neg, Semantics::kLinear);
    m.graph.SetEvidence(v, label);
  }
  return m;
}

TEST(LearnerTest, RecoversPlantedSigns) {
  PlantedModel m = BuildPlanted(60, 3);
  Learner learner(&m.graph);
  LearnerOptions options;
  options.epochs = 80;
  options.learning_rate = 0.2;
  options.seed = 5;
  options.warmstart = false;
  const LearnStats stats = learner.Learn(options);
  EXPECT_GT(m.graph.WeightValue(m.w_pos), 0.5);
  EXPECT_LT(m.graph.WeightValue(m.w_neg), -0.5);
  EXPECT_LT(stats.final_loss, stats.initial_loss);
}

TEST(LearnerTest, LossDecreasesOverEpochs) {
  PlantedModel m = BuildPlanted(60, 7);
  Learner learner(&m.graph);
  LearnerOptions options;
  options.epochs = 60;
  options.warmstart = false;
  options.seed = 11;
  const LearnStats stats = learner.Learn(options);
  ASSERT_EQ(stats.epochs_run, 60u);
  // Compare early-epoch loss to late-epoch loss (allowing SGD noise; on
  // separable data both can converge to ~0 within the first epochs).
  double early = 0, late = 0;
  for (size_t i = 0; i < 5; ++i) early += stats.epoch_losses[i];
  for (size_t i = 55; i < 60; ++i) late += stats.epoch_losses[i];
  EXPECT_LE(late, early + 1e-6);
  EXPECT_LT(stats.final_loss, stats.initial_loss);
}

TEST(LearnerTest, NonLearnableWeightsUntouched) {
  PlantedModel m = BuildPlanted(20, 9);
  const WeightId fixed = m.graph.AddWeight(2.5, /*learnable=*/false, "fixed");
  m.graph.AddSimpleFactor(m.vars[0], {}, fixed);
  Learner learner(&m.graph);
  LearnerOptions options;
  options.epochs = 10;
  learner.Learn(options);
  EXPECT_DOUBLE_EQ(m.graph.WeightValue(fixed), 2.5);
}

TEST(LearnerTest, ColdStartResetsWeights) {
  PlantedModel m = BuildPlanted(20, 13);
  m.graph.SetWeightValue(m.w_pos, 99.0);
  Learner learner(&m.graph);
  LearnerOptions options;
  options.epochs = 0;  // reset only, no training
  options.warmstart = false;
  learner.Learn(options);
  EXPECT_DOUBLE_EQ(m.graph.WeightValue(m.w_pos), 0.0);
}

TEST(LearnerTest, WarmstartStartsFromLowerLoss) {
  // Train a model, then "re-learn" with warmstart vs cold start: the
  // warmstarted run must begin at (much) lower loss (Appendix B.3).
  PlantedModel m = BuildPlanted(60, 17);
  Learner learner(&m.graph);
  LearnerOptions train;
  train.epochs = 80;
  train.warmstart = false;
  train.seed = 19;
  learner.Learn(train);
  const double trained_loss = learner.EvidenceLoss();

  LearnerOptions warm;
  warm.epochs = 0;
  warm.warmstart = true;
  const LearnStats warm_stats = learner.Learn(warm);
  EXPECT_DOUBLE_EQ(warm_stats.initial_loss, trained_loss);

  LearnerOptions cold;
  cold.epochs = 0;
  cold.warmstart = false;
  const LearnStats cold_stats = learner.Learn(cold);
  EXPECT_GT(cold_stats.initial_loss, trained_loss);
}

TEST(LearnerTest, ReplicatedChainsRecoverPlantedSigns) {
  // The replicated learner (R clamped + R free chains, replica-averaged
  // gradients) must learn the planted model like the two-chain path does.
  PlantedModel m = BuildPlanted(60, 31);
  Learner learner(&m.graph);
  LearnerOptions options;
  options.epochs = 80;
  options.learning_rate = 0.2;
  options.seed = 5;
  options.warmstart = false;
  options.num_replicas = 3;
  options.num_threads = 6;
  const LearnStats stats = learner.Learn(options);
  EXPECT_GT(m.graph.WeightValue(m.w_pos), 0.5);
  EXPECT_LT(m.graph.WeightValue(m.w_neg), -0.5);
  EXPECT_LT(stats.final_loss, stats.initial_loss);
}

TEST(LearnerTest, ReplicatedLearnerDeterministicAtOneWorkerPerChain) {
  // With num_threads <= 2 * num_replicas every chain runs on one worker, so
  // the whole procedure is deterministic for a fixed seed: two independent
  // runs over identical graphs must land on bit-identical weights.
  PlantedModel a = BuildPlanted(40, 37);
  PlantedModel b = BuildPlanted(40, 37);
  LearnerOptions options;
  options.epochs = 30;
  options.warmstart = false;
  options.seed = 41;
  options.num_replicas = 2;
  options.num_threads = 4;
  const LearnStats sa = Learner(&a.graph).Learn(options);
  const LearnStats sb = Learner(&b.graph).Learn(options);
  ASSERT_EQ(a.graph.NumWeights(), b.graph.NumWeights());
  for (WeightId w = 0; w < a.graph.NumWeights(); ++w) {
    EXPECT_DOUBLE_EQ(a.graph.WeightValue(w), b.graph.WeightValue(w)) << "w " << w;
  }
  ASSERT_EQ(sa.epoch_losses.size(), sb.epoch_losses.size());
  for (size_t e = 0; e < sa.epoch_losses.size(); ++e) {
    EXPECT_DOUBLE_EQ(sa.epoch_losses[e], sb.epoch_losses[e]) << "epoch " << e;
  }
}

TEST(LearnerTest, GradientStyleAveragingAlsoLearns) {
  PlantedModel m = BuildPlanted(40, 23);
  Learner learner(&m.graph);
  LearnerOptions options;
  options.epochs = 25;
  options.sweeps_per_epoch = 5;  // GD-style averaged gradient
  options.warmstart = false;
  options.seed = 29;
  const LearnStats stats = learner.Learn(options);
  EXPECT_LT(stats.final_loss, stats.initial_loss);
  EXPECT_GT(m.graph.WeightValue(m.w_pos), 0.0);
}

}  // namespace
}  // namespace deepdive::inference
