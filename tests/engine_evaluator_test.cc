#include <gtest/gtest.h>

#include <map>

#include "dsl/program.h"
#include "engine/rule_evaluator.h"
#include "storage/database.h"
#include "util/random.h"

namespace deepdive::engine {
namespace {

using dsl::CompileProgram;
using dsl::Program;

struct Fixture {
  Program program;
  Database db;

  explicit Fixture(const std::string& source) {
    auto p = CompileProgram(source);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    program = std::move(p).value();
    EXPECT_TRUE(program.InstantiateSchema(&db).ok());
  }

  Table* table(const std::string& name) { return db.GetTable(name); }

  CompiledRuleBody Compile(size_t rule_index = 0) {
    const dsl::DeductiveRule& rule = program.deductive_rules()[rule_index];
    auto body = CompiledRuleBody::Compile(program, db, rule.body, rule.conditions);
    EXPECT_TRUE(body.ok()) << body.status().ToString();
    return std::move(body).value();
  }

  std::multiset<std::string> HeadTuples(const CompiledRuleBody& body,
                                        size_t rule_index = 0) {
    const dsl::DeductiveRule& rule = program.deductive_rules()[rule_index];
    std::multiset<std::string> out;
    body.EvaluateFull([&](const std::vector<Value>& values, int64_t sign) {
      EXPECT_EQ(sign, 1);
      out.insert(TupleToString(ProjectHead(rule.head.terms, body.var_slots(), values)));
    });
    return out;
  }
};

TEST(EvalCompareTest, AllOperators) {
  EXPECT_TRUE(EvalCompare(dsl::CompareOp::kEq, Value(1), Value(1)));
  EXPECT_TRUE(EvalCompare(dsl::CompareOp::kNe, Value(1), Value(2)));
  EXPECT_TRUE(EvalCompare(dsl::CompareOp::kLt, Value(1), Value(2)));
  EXPECT_TRUE(EvalCompare(dsl::CompareOp::kLe, Value(2), Value(2)));
  EXPECT_TRUE(EvalCompare(dsl::CompareOp::kGt, Value(3), Value(2)));
  EXPECT_TRUE(EvalCompare(dsl::CompareOp::kGe, Value(2), Value(2)));
  EXPECT_FALSE(EvalCompare(dsl::CompareOp::kLt, Value(2), Value(2)));
}

TEST(RuleEvaluatorTest, SimpleJoin) {
  Fixture f(R"(
    relation R(x: int, y: int).
    relation S(y: int).
    relation H(x: int).
    rule H(x) :- R(x, y), S(y).
  )");
  ASSERT_TRUE(f.table("R")->Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(f.table("R")->Insert({Value(2), Value(20)}).ok());
  ASSERT_TRUE(f.table("S")->Insert({Value(10)}).ok());
  auto body = f.Compile();
  EXPECT_EQ(f.HeadTuples(body), (std::multiset<std::string>{"(1)"}));
}

TEST(RuleEvaluatorTest, SelfJoinEnumeratesOrderedPairs) {
  Fixture f(R"(
    relation P(s: int, m: int).
    relation H(a: int, b: int).
    rule H(a, b) :- P(s, a), P(s, b), a != b.
  )");
  ASSERT_TRUE(f.table("P")->Insert({Value(1), Value(7)}).ok());
  ASSERT_TRUE(f.table("P")->Insert({Value(1), Value(8)}).ok());
  ASSERT_TRUE(f.table("P")->Insert({Value(2), Value(9)}).ok());
  auto body = f.Compile();
  EXPECT_EQ(f.HeadTuples(body), (std::multiset<std::string>{"(7, 8)", "(8, 7)"}));
}

TEST(RuleEvaluatorTest, ConstantsFilter) {
  Fixture f(R"(
    relation R(x: int, tag: string).
    relation H(x: int).
    rule H(x) :- R(x, "keep").
  )");
  ASSERT_TRUE(f.table("R")->Insert({Value(1), Value("keep")}).ok());
  ASSERT_TRUE(f.table("R")->Insert({Value(2), Value("drop")}).ok());
  auto body = f.Compile();
  EXPECT_EQ(f.HeadTuples(body), (std::multiset<std::string>{"(1)"}));
}

TEST(RuleEvaluatorTest, RepeatedVariableWithinAtom) {
  Fixture f(R"(
    relation R(x: int, y: int).
    relation H(x: int).
    rule H(x) :- R(x, x).
  )");
  ASSERT_TRUE(f.table("R")->Insert({Value(1), Value(1)}).ok());
  ASSERT_TRUE(f.table("R")->Insert({Value(1), Value(2)}).ok());
  auto body = f.Compile();
  EXPECT_EQ(f.HeadTuples(body), (std::multiset<std::string>{"(1)"}));
}

TEST(RuleEvaluatorTest, NegationAsAntiJoin) {
  Fixture f(R"(
    relation A(x: int).
    relation B(x: int).
    relation H(x: int).
    rule H(x) :- A(x), !B(x).
  )");
  ASSERT_TRUE(f.table("A")->Insert({Value(1)}).ok());
  ASSERT_TRUE(f.table("A")->Insert({Value(2)}).ok());
  ASSERT_TRUE(f.table("B")->Insert({Value(2)}).ok());
  auto body = f.Compile();
  EXPECT_EQ(f.HeadTuples(body), (std::multiset<std::string>{"(1)"}));
}

TEST(RuleEvaluatorTest, MultisetSemantics) {
  // Two derivations of the same head tuple (different s) both fire.
  Fixture f(R"(
    relation P(s: int, m: int).
    relation H(m: int).
    rule H(m) :- P(s, m).
  )");
  ASSERT_TRUE(f.table("P")->Insert({Value(1), Value(7)}).ok());
  ASSERT_TRUE(f.table("P")->Insert({Value(2), Value(7)}).ok());
  auto body = f.Compile();
  EXPECT_EQ(f.HeadTuples(body), (std::multiset<std::string>{"(7)", "(7)"}));
}

TEST(RuleEvaluatorTest, DeltaEvaluationRejectsChangedNegation) {
  Fixture f(R"(
    relation A(x: int).
    relation B(x: int).
    relation H(x: int).
    rule H(x) :- A(x), !B(x).
  )");
  auto body = f.Compile();
  DeltaTable db_delta("B");
  db_delta.Add({Value(1)}, 1);
  std::map<std::string, const DeltaTable*> deltas = {{"B", &db_delta}};
  auto status = body.EvaluateDelta(deltas, [](const std::vector<Value>&, int64_t) {});
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

// Property: for random updates (insertions and deletions, including
// self-joins), delta evaluation produces exactly new-state minus old-state
// derivation multisets.
class DeltaEvaluationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaEvaluationProperty, MatchesRecomputation) {
  Fixture f(R"(
    relation P(s: int, m: int).
    relation Q(m: int).
    relation H(a: int, b: int).
    rule H(a, b) :- P(s, a), P(s, b), Q(b), a != b.
  )");
  Rng rng(GetParam());
  Table* p = f.table("P");
  Table* q = f.table("Q");

  // Random initial state.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        p->Insert({Value(static_cast<int64_t>(rng.UniformInt(6))),
                   Value(static_cast<int64_t>(rng.UniformInt(8)))})
            .ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q->Insert({Value(static_cast<int64_t>(rng.UniformInt(8)))}).ok());
  }

  auto body = f.Compile();
  auto count_derivations = [&]() {
    std::multiset<std::string> out;
    body.EvaluateFull([&](const std::vector<Value>& values, int64_t) {
      out.insert(TupleToString(values));
    });
    return out;
  };
  const auto before = count_derivations();

  // Random update touching both relations.
  DeltaTable dp("P"), dq("Q");
  for (int i = 0; i < 6; ++i) {
    Tuple t = {Value(static_cast<int64_t>(rng.UniformInt(6))),
               Value(static_cast<int64_t>(rng.UniformInt(8)))};
    if (p->Contains(t)) {
      if (rng.Bernoulli(0.5)) {
        p->Erase(t);
        dp.Add(t, -1);
      }
    } else {
      ASSERT_TRUE(p->Insert(t).ok());
      dp.Add(t, +1);
    }
  }
  for (int i = 0; i < 3; ++i) {
    Tuple t = {Value(static_cast<int64_t>(rng.UniformInt(8)))};
    if (q->Contains(t)) {
      if (rng.Bernoulli(0.5)) {
        q->Erase(t);
        dq.Add(t, -1);
      }
    } else {
      ASSERT_TRUE(q->Insert(t).ok());
      dq.Add(t, +1);
    }
  }
  const auto after = count_derivations();

  // Delta evaluation (tables are already in the NEW state).
  std::map<std::string, int64_t> delta_counts;
  std::map<std::string, const DeltaTable*> deltas = {{"P", &dp}, {"Q", &dq}};
  ASSERT_TRUE(body.EvaluateDelta(deltas,
                                 [&](const std::vector<Value>& values, int64_t sign) {
                                   delta_counts[TupleToString(values)] += sign;
                                 })
                  .ok());

  // Expected delta: after - before, as signed multiset counts.
  std::map<std::string, int64_t> expected;
  for (const auto& s : after) ++expected[s];
  for (const auto& s : before) --expected[s];
  for (auto it = expected.begin(); it != expected.end();) {
    it = it->second == 0 ? expected.erase(it) : std::next(it);
  }
  for (auto it = delta_counts.begin(); it != delta_counts.end();) {
    it = it->second == 0 ? delta_counts.erase(it) : std::next(it);
  }
  EXPECT_EQ(delta_counts, expected);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DeltaEvaluationProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace deepdive::engine
