// Determinism suite for the sharded grounding pipeline: grounding at 1, 2,
// and 8 threads must produce a factor graph and GraphDelta *bit-identical*
// to the sequential grounder's — same variable ids, group ids, clause order,
// weights, and active-clause counts — for full grounding, rule addition,
// self-join factor rules, and retraction round-trips.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dsl/program.h"
#include "engine/view_maintenance.h"
#include "factor/graph_delta.h"
#include "grounding/grounder.h"
#include "grounding/incremental_grounder.h"
#include "storage/database.h"
#include "util/random.h"
#include "util/string_util.h"

namespace deepdive::grounding {
namespace {

using factor::ClauseId;
using factor::FactorGraph;
using factor::GraphDelta;
using factor::GroupId;
using factor::VarId;
using factor::WeightId;

// CAND is a deductive self-join (evaluated by view maintenance); TRI is a
// *factor-rule* self-join over the query relation, and SYM's head tuple can
// collide with its body tuple (the self-reference skip path).
constexpr char kProgram[] = R"(
  relation Person(s: int, m: int).
  relation Feature(m1: int, m2: int, f: string).
  query relation HasSpouse(m1: int, m2: int).
  evidence HasSpouseEv(m1: int, m2: int, l: bool) for HasSpouse.
  rule CAND: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
  factor FE: HasSpouse(m1, m2) :- Feature(m1, m2, f) weight = w(f) semantics = ratio.
  factor SYM: HasSpouse(m2, m1) :- HasSpouse(m1, m2) weight = 0.4.
  factor TRI: HasSpouse(m1, m3) :- HasSpouse(m1, m2), HasSpouse(m2, m3) weight = 0.2.
)";

constexpr char kExtraRule[] =
    "factor FE2: HasSpouse(m1, m2) :- Feature(m2, m1, f) weight = w(f).";

struct System {
  dsl::Program program;
  Database db;
  std::unique_ptr<engine::ViewMaintainer> vm;
  GroundGraph ground;
  std::unique_ptr<IncrementalGrounder> grounder;

  explicit System(GroundingOptions options, size_t sentences = 120) {
    Init(options, sentences);
  }

  void Init(GroundingOptions options, size_t sentences) {
    auto p = dsl::CompileProgram(kProgram);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    program = std::move(p).value();
    ASSERT_TRUE(program.InstantiateSchema(&db).ok());

    // Deterministic pseudo-random base data. Overlapping mentions across
    // sentences produce self-join fanout; ~12 feature names force tied
    // weights to be shared (and deduped) across shards.
    Rng rng(7);
    Table* person = db.GetTable("Person");
    Table* feature = db.GetTable("Feature");
    Table* evidence = db.GetTable("HasSpouseEv");
    for (size_t s = 0; s < sentences; ++s) {
      const int64_t m1 = static_cast<int64_t>(rng.UniformInt(3 * sentences / 2));
      const int64_t m2 = static_cast<int64_t>(rng.UniformInt(3 * sentences / 2));
      ASSERT_TRUE(person->Insert({Value(static_cast<int64_t>(s)), Value(m1)}).ok());
      ASSERT_TRUE(person->Insert({Value(static_cast<int64_t>(s)), Value(m2)}).ok());
      ASSERT_TRUE(feature
                      ->Insert({Value(m1), Value(m2),
                                Value(StrFormat("f%zu", rng.UniformInt(12)))})
                      .ok());
      if (s % 5 == 0) {
        ASSERT_TRUE(
            evidence->Insert({Value(m1), Value(m2), Value(s % 10 == 0)}).ok());
      }
    }

    vm = std::make_unique<engine::ViewMaintainer>(&program, &db);
    ASSERT_TRUE(vm->Initialize().ok());
    grounder = std::make_unique<IncrementalGrounder>(&program, &db, &ground, options);
    ASSERT_TRUE(grounder->Initialize().ok());
  }

  StatusOr<GraphDelta> Apply(const engine::RelationDeltas& external) {
    DD_ASSIGN_OR_RETURN(engine::RelationDeltas set_deltas, vm->ApplyUpdate(external));
    return grounder->ApplyRelationDeltas(set_deltas);
  }
};

GroundingOptions Sharded(size_t threads) {
  GroundingOptions options;
  options.num_threads = threads;
  options.min_shard_rows = 1;  // force sharding even on small domains
  return options;
}

void ExpectGraphsIdentical(const FactorGraph& a, const FactorGraph& b) {
  ASSERT_EQ(a.NumVariables(), b.NumVariables());
  ASSERT_EQ(a.NumWeights(), b.NumWeights());
  ASSERT_EQ(a.NumGroups(), b.NumGroups());
  ASSERT_EQ(a.NumClauses(), b.NumClauses());
  EXPECT_EQ(a.NumActiveClauses(), b.NumActiveClauses());
  for (VarId v = 0; v < a.NumVariables(); ++v) {
    EXPECT_EQ(a.EvidenceValue(v), b.EvidenceValue(v)) << "var " << v;
  }
  for (WeightId w = 0; w < a.NumWeights(); ++w) {
    EXPECT_EQ(a.weight(w).value, b.weight(w).value) << "weight " << w;
    EXPECT_EQ(a.weight(w).learnable, b.weight(w).learnable) << "weight " << w;
    EXPECT_EQ(a.weight(w).description, b.weight(w).description) << "weight " << w;
  }
  for (GroupId g = 0; g < a.NumGroups(); ++g) {
    const factor::FactorGroup& ga = a.group(g);
    const factor::FactorGroup& gb = b.group(g);
    EXPECT_EQ(ga.rule_id, gb.rule_id) << "group " << g;
    EXPECT_EQ(ga.head, gb.head) << "group " << g;
    EXPECT_EQ(ga.weight, gb.weight) << "group " << g;
    EXPECT_EQ(ga.semantics, gb.semantics) << "group " << g;
    EXPECT_EQ(ga.active, gb.active) << "group " << g;
    EXPECT_EQ(ga.clauses, gb.clauses) << "group " << g;
  }
  for (ClauseId c = 0; c < a.NumClauses(); ++c) {
    const factor::Clause& ca = a.clause(c);
    const factor::Clause& cb = b.clause(c);
    EXPECT_EQ(ca.group, cb.group) << "clause " << c;
    EXPECT_EQ(ca.active, cb.active) << "clause " << c;
    ASSERT_EQ(ca.literals.size(), cb.literals.size()) << "clause " << c;
    for (size_t i = 0; i < ca.literals.size(); ++i) {
      EXPECT_EQ(ca.literals[i].var, cb.literals[i].var) << "clause " << c;
      EXPECT_EQ(ca.literals[i].negated, cb.literals[i].negated) << "clause " << c;
    }
  }
}

void ExpectDeltasIdentical(const GraphDelta& a, const GraphDelta& b) {
  EXPECT_EQ(a.new_variables, b.new_variables);
  EXPECT_EQ(a.new_groups, b.new_groups);
  EXPECT_EQ(a.removed_groups, b.removed_groups);
  ASSERT_EQ(a.modified_groups.size(), b.modified_groups.size());
  for (size_t i = 0; i < a.modified_groups.size(); ++i) {
    EXPECT_EQ(a.modified_groups[i].group, b.modified_groups[i].group) << "mod " << i;
    EXPECT_EQ(a.modified_groups[i].added, b.modified_groups[i].added) << "mod " << i;
    EXPECT_EQ(a.modified_groups[i].removed, b.modified_groups[i].removed)
        << "mod " << i;
  }
  ASSERT_EQ(a.evidence_changes.size(), b.evidence_changes.size());
  for (size_t i = 0; i < a.evidence_changes.size(); ++i) {
    EXPECT_EQ(a.evidence_changes[i].var, b.evidence_changes[i].var);
    EXPECT_EQ(a.evidence_changes[i].old_value, b.evidence_changes[i].old_value);
    EXPECT_EQ(a.evidence_changes[i].new_value, b.evidence_changes[i].new_value);
  }
}

void ExpectGroundsIdentical(const System& a, const System& b) {
  EXPECT_EQ(a.ground.var_tuples, b.ground.var_tuples);
  EXPECT_EQ(a.ground.VariablesOf("HasSpouse"), b.ground.VariablesOf("HasSpouse"));
  ExpectGraphsIdentical(a.ground.graph, b.ground.graph);
}

class ParallelGroundingDeterminism : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelGroundingDeterminism, GroundAllMatchesSequential) {
  System seq(GroundingOptions{});  // num_threads = 1, never sharded
  System par(Sharded(GetParam()));

  auto seq_delta = seq.grounder->GroundAll();
  auto par_delta = par.grounder->GroundAll();
  ASSERT_TRUE(seq_delta.ok()) << seq_delta.status().ToString();
  ASSERT_TRUE(par_delta.ok()) << par_delta.status().ToString();

  ASSERT_GT(par.ground.graph.NumClauses(), 100u) << "test graph too small to shard";
  ExpectDeltasIdentical(*seq_delta, *par_delta);
  ExpectGroundsIdentical(seq, par);
}

TEST_P(ParallelGroundingDeterminism, AddFactorRuleMatchesSequential) {
  System seq(GroundingOptions{});
  System par(Sharded(GetParam()));
  ASSERT_TRUE(seq.grounder->GroundAll().ok());
  ASSERT_TRUE(par.grounder->GroundAll().ok());

  auto fragment = dsl::AnalyzeFragment(seq.program, kExtraRule);
  ASSERT_TRUE(fragment.ok()) << fragment.status().ToString();
  const dsl::FactorRule& rule = fragment->factor_rules().front();

  auto seq_delta = seq.grounder->AddFactorRule(rule);
  auto par_delta = par.grounder->AddFactorRule(rule);
  ASSERT_TRUE(seq_delta.ok()) << seq_delta.status().ToString();
  ASSERT_TRUE(par_delta.ok()) << par_delta.status().ToString();

  ExpectDeltasIdentical(*seq_delta, *par_delta);
  ExpectGroundsIdentical(seq, par);
}

TEST_P(ParallelGroundingDeterminism, RetractionRoundTripMatchesSequential) {
  System seq(GroundingOptions{});
  System par(Sharded(GetParam()));
  ASSERT_TRUE(seq.grounder->GroundAll().ok());
  ASSERT_TRUE(par.grounder->GroundAll().ok());

  // Insert a batch (new sentences reusing existing mentions plus fresh
  // ones), then delete part of the original data, then re-insert it: every
  // phase must retract/add exactly the same clauses in both systems.
  engine::RelationDeltas insert;
  for (int i = 0; i < 8; ++i) {
    const int64_t s = 1000 + i;
    insert["Person"].Add({Value(s), Value(static_cast<int64_t>(2 * i))}, 1);
    insert["Person"].Add({Value(s), Value(static_cast<int64_t>(500 + i))}, 1);
    insert["Feature"].Add({Value(static_cast<int64_t>(2 * i)),
                           Value(static_cast<int64_t>(500 + i)), Value("fnew")},
                          1);
    insert["HasSpouseEv"].Add(
        {Value(static_cast<int64_t>(2 * i)), Value(static_cast<int64_t>(500 + i)),
         Value(i % 2 == 0)},
        1);
  }
  auto seq_d1 = seq.Apply(insert);
  auto par_d1 = par.Apply(insert);
  ASSERT_TRUE(seq_d1.ok()) << seq_d1.status().ToString();
  ASSERT_TRUE(par_d1.ok()) << par_d1.status().ToString();
  ExpectDeltasIdentical(*seq_d1, *par_d1);
  ExpectGroundsIdentical(seq, par);

  // Retract: delete several original sentences' Person rows and features.
  engine::RelationDeltas retract;
  Rng rng(7);  // replay the constructor's stream to find real rows
  const size_t sentences = 120;
  for (size_t s = 0; s < sentences; ++s) {
    const int64_t m1 = static_cast<int64_t>(rng.UniformInt(3 * sentences / 2));
    const int64_t m2 = static_cast<int64_t>(rng.UniformInt(3 * sentences / 2));
    const std::string f = StrFormat("f%zu", rng.UniformInt(12));
    if (s % 4 != 0) continue;
    retract["Person"].Add({Value(static_cast<int64_t>(s)), Value(m1)}, -1);
    retract["Feature"].Add({Value(m1), Value(m2), Value(f)}, -1);
  }
  auto seq_d2 = seq.Apply(retract);
  auto par_d2 = par.Apply(retract);
  ASSERT_TRUE(seq_d2.ok()) << seq_d2.status().ToString();
  ASSERT_TRUE(par_d2.ok()) << par_d2.status().ToString();
  EXPECT_FALSE(seq_d2->empty());
  ExpectDeltasIdentical(*seq_d2, *par_d2);
  ExpectGroundsIdentical(seq, par);

  // Round trip: put the deleted rows back; both systems must again agree
  // (and the graphs keep matching clause-for-clause, including the ids
  // re-added clauses get).
  engine::RelationDeltas reinsert;
  Rng rng2(7);
  for (size_t s = 0; s < sentences; ++s) {
    const int64_t m1 = static_cast<int64_t>(rng2.UniformInt(3 * sentences / 2));
    const int64_t m2 = static_cast<int64_t>(rng2.UniformInt(3 * sentences / 2));
    const std::string f = StrFormat("f%zu", rng2.UniformInt(12));
    if (s % 4 != 0) continue;
    reinsert["Person"].Add({Value(static_cast<int64_t>(s)), Value(m1)}, 1);
    reinsert["Feature"].Add({Value(m1), Value(m2), Value(f)}, 1);
  }
  auto seq_d3 = seq.Apply(reinsert);
  auto par_d3 = par.Apply(reinsert);
  ASSERT_TRUE(seq_d3.ok()) << seq_d3.status().ToString();
  ASSERT_TRUE(par_d3.ok()) << par_d3.status().ToString();
  ExpectDeltasIdentical(*seq_d3, *par_d3);
  ExpectGroundsIdentical(seq, par);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelGroundingDeterminism,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return StrFormat("t%zu", info.param);
                         });

TEST(ParallelGroundingTest, OldModeDriverAddsBackDeletedTuples) {
  // Telescoping terms order delta positions by (relation, atom index), so
  // with body `Bt(x), At(x)` and both relations changed, the term where At
  // is the delta runs the *driver* Bt in OLD mode — deleted Bt tuples must
  // be added back or the lost derivation is never retracted. Regression
  // test: this was broken when DeltaTermDomain swapped the NEW/OLD cases.
  constexpr char kProg[] = R"(
    relation Bt(x: int).
    relation At(x: int).
    query relation Q(x: int).
    rule C: Q(x) :- Bt(x).
    factor F: Q(x) :- Bt(x), At(x) weight = 1.0.
  )";
  for (size_t threads : {size_t{1}, size_t{8}}) {
    auto p = dsl::CompileProgram(kProg);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    dsl::Program program = std::move(p).value();
    Database db;
    ASSERT_TRUE(program.InstantiateSchema(&db).ok());
    for (int64_t x = 0; x < 10; ++x) {
      ASSERT_TRUE(db.GetTable("Bt")->Insert({Value(x)}).ok());
      ASSERT_TRUE(db.GetTable("At")->Insert({Value(x)}).ok());
    }
    engine::ViewMaintainer vm(&program, &db);
    ASSERT_TRUE(vm.Initialize().ok());
    GroundGraph ground;
    IncrementalGrounder grounder(&program, &db, &ground, Sharded(threads));
    ASSERT_TRUE(grounder.Initialize().ok());
    ASSERT_TRUE(grounder.GroundAll().ok());
    ASSERT_EQ(ground.graph.NumActiveClauses(), 10u);

    engine::RelationDeltas external;
    external["Bt"].Add({Value(static_cast<int64_t>(5))}, -1);
    external["At"].Add({Value(static_cast<int64_t>(5))}, -1);
    auto set_deltas = vm.ApplyUpdate(external);
    ASSERT_TRUE(set_deltas.ok()) << set_deltas.status().ToString();
    auto delta = grounder.ApplyRelationDeltas(*set_deltas);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    EXPECT_EQ(ground.graph.NumActiveClauses(), 9u) << "threads=" << threads;
  }
}

TEST(ParallelGroundingTest, GroundProgramHonorsOptions) {
  // The one-shot GroundProgram entry point accepts options and produces the
  // same graph sharded as sequential.
  System seq(GroundingOptions{});
  ASSERT_TRUE(seq.grounder->GroundAll().ok());

  System scratch(Sharded(8));
  auto ground = GroundProgram(scratch.program, &scratch.db, Sharded(8));
  ASSERT_TRUE(ground.ok()) << ground.status().ToString();
  EXPECT_EQ(ground->var_tuples, seq.ground.var_tuples);
  ExpectGraphsIdentical(ground->graph, seq.ground.graph);
}

}  // namespace
}  // namespace deepdive::grounding
