// Incremental rule mining: the co-occurrence collector's incrementally
// maintained state equals a fresh rebuild after arbitrary updates, the
// candidate generator is deterministic and proposes bounded Horn clauses
// (copy and chain rules), and the miner promotes a planted rule through the
// engine's first-class rule-delta path — or rejects it with a bit-identical
// restore of the pre-trial state.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/deepdive.h"
#include "mining/candidates.h"
#include "mining/cooccurrence.h"
#include "mining/miner.h"
#include "util/thread_role.h"

namespace deepdive::mining {
namespace {

/// Planted-signal program: Pair co-occurs with mostly-positive Match labels,
/// so the miner should propose and promote "Match(a, b) :- Pair(a, b)".
constexpr char kPlantedProgram[] = R"(
  relation Pair(a: int, b: int).
  query relation Match(a: int, b: int).
  evidence MatchEv(a: int, b: int, l: bool) for Match.
  rule CAND: Match(a, b) :- Pair(a, b).
  factor PRIOR: Match(a, b) :- Pair(a, b) weight = -0.2 semantics = logical.
)";

std::vector<Tuple> PairRows() {
  std::vector<Tuple> rows;
  for (int i = 1; i <= 8; ++i) rows.push_back({Value(i), Value(i + 100)});
  return rows;
}

std::vector<Tuple> MatchEvRows() {
  // 7 positive labels, 1 negative: confidence (7+1)/(7+1+2) = 0.8.
  std::vector<Tuple> rows;
  for (int i = 1; i <= 7; ++i) {
    rows.push_back({Value(i), Value(i + 100), Value(true)});
  }
  rows.push_back({Value(8), Value(108), Value(false)});
  return rows;
}

std::unique_ptr<core::DeepDive> MakePlanted() REQUIRES(serving_thread) {
  auto dd = core::DeepDive::Create(kPlantedProgram, core::FastTestConfig());
  EXPECT_TRUE(dd.ok()) << dd.status().ToString();
  EXPECT_TRUE(dd.value()->LoadRows("Pair", PairRows()).ok());
  EXPECT_TRUE(dd.value()->LoadRows("MatchEv", MatchEvRows()).ok());
  EXPECT_TRUE(dd.value()->Initialize().ok());
  return std::move(dd).value();
}

void ExpectStatsEqual(const CooccurrenceStats& incremental,
                      const CooccurrenceStats& rebuilt) {
  auto check_relation = [&](const std::string& name) {
    SCOPED_TRACE("relation " + name);
    const auto* live = incremental.Relation(name);
    const auto* fresh = rebuilt.Relation(name);
    ASSERT_NE(live, nullptr);
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(*live, *fresh);
    const Schema* schema = rebuilt.SchemaOf(name);
    ASSERT_NE(schema, nullptr);
    for (size_t c = 0; c < schema->columns().size(); ++c) {
      const auto* live_col = incremental.ColumnValues(name, c);
      const auto* fresh_col = rebuilt.ColumnValues(name, c);
      ASSERT_NE(live_col, nullptr);
      ASSERT_NE(fresh_col, nullptr);
      EXPECT_EQ(*live_col, *fresh_col) << "column " << c;
    }
  };
  for (const std::string& name : rebuilt.base_relations()) check_relation(name);
  for (const std::string& name : rebuilt.query_relations()) {
    check_relation(name);
    const auto* live = incremental.Labels(name);
    const auto* fresh = rebuilt.Labels(name);
    ASSERT_NE(live, nullptr);
    ASSERT_NE(fresh, nullptr);
    ASSERT_EQ(live->size(), fresh->size()) << "labels of " << name;
    auto it = fresh->begin();
    for (const auto& [tuple, counts] : *live) {
      EXPECT_EQ(tuple, it->first);
      EXPECT_EQ(counts.positive, it->second.positive);
      EXPECT_EQ(counts.negative, it->second.negative);
      ++it;
    }
  }
}

/// The collector's correctness invariant: after any stream of updates
/// (inserts AND DRed deletions, base and evidence relations alike), the
/// incrementally maintained state equals a fresh full-scan rebuild.
TEST(MiningTest, IncrementalStatsMatchFullRebuild) {
  deepdive::serving_thread.AssertHeld();
  auto dd = MakePlanted();

  CooccurrenceStats live;
  live.BindSchema(dd->program());
  live.Rebuild(*dd->db());
  dd->SetRelationDeltaListener(
      [&live](const engine::RelationDeltas& deltas) { live.Observe(deltas); });

  core::UpdateSpec grow;
  grow.label = "grow";
  grow.inserts["Pair"] = {{Value(9), Value(109)}, {Value(10), Value(110)}};
  grow.inserts["MatchEv"] = {{Value(9), Value(109), Value(true)}};
  ASSERT_TRUE(dd->ApplyUpdate(grow).ok());

  core::UpdateSpec shrink;
  shrink.label = "shrink";
  shrink.deletes["Pair"] = {{Value(8), Value(108)}};
  shrink.deletes["MatchEv"] = {{Value(8), Value(108), Value(false)}};
  ASSERT_TRUE(dd->ApplyUpdate(shrink).ok());

  dd->SetRelationDeltaListener(nullptr);
  EXPECT_GE(live.observed_batches(), 2u);

  CooccurrenceStats rebuilt;
  rebuilt.BindSchema(dd->program());
  rebuilt.Rebuild(*dd->db());
  ExpectStatsEqual(live, rebuilt);
}

TEST(MiningTest, GenerateCandidatesProposesPlantedCopyRule) {
  deepdive::serving_thread.AssertHeld();
  auto dd = MakePlanted();
  CooccurrenceStats stats;
  stats.BindSchema(dd->program());
  stats.Rebuild(*dd->db());

  const std::vector<Candidate> candidates =
      GenerateCandidates(stats, CandidateOptions());
  ASSERT_FALSE(candidates.empty());
  const Candidate& top = candidates.front();
  EXPECT_EQ(top.rule.head.predicate, "Match");
  ASSERT_EQ(top.rule.body.size(), 1u);
  EXPECT_EQ(top.rule.body.front().predicate, "Pair");
  EXPECT_EQ(top.support, 7);
  EXPECT_EQ(top.contradictions, 1);
  EXPECT_DOUBLE_EQ(top.confidence, 0.8);
  // Trial weights are fixed (learn-free trials must not perturb learning).
  EXPECT_FALSE(top.rule.weight.learnable);

  // Bit-reproducible candidate order (the determinism analyzer's contract).
  const std::vector<Candidate> again =
      GenerateCandidates(stats, CandidateOptions());
  ASSERT_EQ(candidates.size(), again.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i].pattern, again[i].pattern);
    EXPECT_EQ(candidates[i].support, again[i].support);
  }
}

TEST(MiningTest, GenerateCandidatesProposesChainRules) {
  deepdive::serving_thread.AssertHeld();
  constexpr char kChainProgram[] = R"(
    relation Link1(x: int, y: int).
    relation Link2(y: int, z: int).
    query relation Path(x: int, z: int).
    evidence PathEv(x: int, z: int, l: bool) for Path.
    rule CAND: Path(x, z) :- Link1(x, y), Link2(y, z).
    factor PRIOR: Path(x, z) :- Link1(x, y), Link2(y, z)
      weight = 0.1 semantics = logical.
  )";
  auto dd = core::DeepDive::Create(kChainProgram, core::FastTestConfig());
  ASSERT_TRUE(dd.ok()) << dd.status().ToString();
  ASSERT_TRUE((*dd)
                  ->LoadRows("Link1", {{Value(1), Value(10)},
                                       {Value(2), Value(20)},
                                       {Value(3), Value(30)}})
                  .ok());
  ASSERT_TRUE((*dd)
                  ->LoadRows("Link2", {{Value(10), Value(100)},
                                       {Value(20), Value(200)},
                                       {Value(30), Value(300)}})
                  .ok());
  ASSERT_TRUE((*dd)
                  ->LoadRows("PathEv", {{Value(1), Value(100), Value(true)},
                                        {Value(2), Value(200), Value(true)},
                                        {Value(3), Value(300), Value(true)}})
                  .ok());
  ASSERT_TRUE((*dd)->Initialize().ok());

  CooccurrenceStats stats;
  stats.BindSchema((*dd)->program());
  stats.Rebuild(*(*dd)->db());
  const std::vector<Candidate> candidates =
      GenerateCandidates(stats, CandidateOptions());

  // The planted join is the only candidate with enough support: no Link
  // tuple appears verbatim in PathEv, so copy rules fail the floor, while
  // Link1 x Link2 derives every positively-labeled Path pair.
  const Candidate* chain = nullptr;
  for (const Candidate& candidate : candidates) {
    if (candidate.rule.body.size() == 2) {
      chain = &candidate;
      break;
    }
  }
  ASSERT_NE(chain, nullptr) << "no chain rule proposed";
  EXPECT_EQ(chain->rule.head.predicate, "Path");
  EXPECT_EQ(chain->rule.body[0].predicate, "Link1");
  EXPECT_EQ(chain->rule.body[1].predicate, "Link2");
  EXPECT_EQ(chain->support, 3);
  for (const Candidate& candidate : candidates) {
    EXPECT_LE(candidate.rule.body.size(), 2u);
  }
}

/// Acceptance: the miner promotes the planted rule end-to-end — candidate
/// generation from co-occurrence statistics, a learn-free trial through
/// AddRule (grounding only the candidate), scoring by evidence likelihood,
/// promotion into the live program.
TEST(MiningTest, MinerPromotesPlantedRule) {
  deepdive::serving_thread.AssertHeld();
  auto dd = MakePlanted();
  const uint64_t version_before = dd->program_version();
  const size_t rules_before = dd->NumRules();

  MinerOptions options;
  options.min_likelihood_gain = 1e-6;
  RuleMiner miner(dd.get(), options);
  auto report = miner.Mine(/*max_promotions=*/1);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->promoted.size(), 1u);
  EXPECT_EQ(report->promoted.front(), "mined_0");
  EXPECT_GE(report->candidates_considered, 1u);
  EXPECT_GE(report->candidates_trialed, 1u);
  ASSERT_FALSE(report->trials.empty());
  EXPECT_TRUE(report->trials.front().promoted);
  EXPECT_GT(report->trials.front().gain, 0.0);
  EXPECT_EQ(dd->NumRules(), rules_before + 1);
  EXPECT_GT(dd->program_version(), version_before);
  EXPECT_EQ(report->program_version_after, dd->program_version());

  // The promoted rule is a real program rule: retractable by its label.
  ASSERT_TRUE(dd->RetractRule("mined_0").ok());
  EXPECT_EQ(dd->NumRules(), rules_before);
}

/// A rejected trial must leave no trace: the learn-free AddRule followed by
/// RetractRule restores marginals and program identity bit-for-bit, and the
/// rejected pattern is not re-trialed while its statistics are unchanged.
TEST(MiningTest, RejectedTrialRestoresStateExactly) {
  deepdive::serving_thread.AssertHeld();
  auto dd = MakePlanted();
  const std::vector<double> marginals_before = dd->marginal_vector();
  const uint64_t fingerprint_before = dd->RulesFingerprint();
  const size_t rules_before = dd->NumRules();

  MinerOptions options;
  options.min_likelihood_gain = 1e9;  // unreachable: every trial is rejected
  RuleMiner miner(dd.get(), options);
  auto report = miner.Mine(/*max_promotions=*/1);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->promoted.empty());
  EXPECT_GE(report->candidates_trialed, 1u);

  EXPECT_EQ(dd->NumRules(), rules_before);
  EXPECT_EQ(dd->RulesFingerprint(), fingerprint_before);
  const std::vector<double>& after = dd->marginal_vector();
  ASSERT_EQ(after.size(), marginals_before.size());
  for (size_t v = 0; v < after.size(); ++v) {
    EXPECT_EQ(marginals_before[v], after[v]) << "var " << v;
  }

  // Rejection memory: unchanged statistics mean no re-trial next pass.
  auto again = miner.Mine(/*max_promotions=*/1);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->candidates_trialed, 0u);

  // ...until the memory is cleared.
  miner.ForgetRejections();
  auto third = miner.Mine(/*max_promotions=*/1);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_GE(third->candidates_trialed, 1u);
}

}  // namespace
}  // namespace deepdive::mining
