// Tests for the voting example of Section 2.4 (Example 2.5) and the
// convergence claims of Appendix A: the three semantics assign very
// different probabilities to the same vote counts, and Gibbs mixes much
// faster under Logical/Ratio than Linear.
#include <gtest/gtest.h>

#include <cmath>

#include "factor/factor_graph.h"
#include "inference/exact.h"
#include "inference/gibbs.h"
#include "util/random.h"

namespace deepdive::inference {
namespace {

using factor::FactorGraph;
using factor::GroupId;
using factor::Semantics;
using factor::VarId;
using factor::WeightId;

/// Builds the voting program: q() :- Up(x) weight 1, q() :- Down(x) weight
/// -1, with |up| up-votes and |down| down-votes as deterministic facts
/// (empty clauses — each grounding counts toward n).
FactorGraph VotingGraph(size_t up, size_t down, Semantics semantics) {
  FactorGraph g;
  const VarId q = g.AddVariable();
  const WeightId w_up = g.AddWeight(1.0, false, "up");
  const WeightId w_down = g.AddWeight(-1.0, false, "down");
  const GroupId g_up = g.AddGroup(0, q, w_up, semantics);
  for (size_t i = 0; i < up; ++i) g.AddClause(g_up, {});
  const GroupId g_down = g.AddGroup(1, q, w_down, semantics);
  for (size_t i = 0; i < down; ++i) g.AddClause(g_down, {});
  return g;
}

double ExactVoteProbability(size_t up, size_t down, Semantics semantics) {
  FactorGraph g = VotingGraph(up, down, semantics);
  auto exact = ExactInference(g);
  EXPECT_TRUE(exact.ok());
  return exact->marginals[0];
}

TEST(VotingSemanticsTest, Example25LargeNearTieVotes) {
  // |Up| = 10^6, |Down| = 10^6 - 100 (Example 2.5). Closed form:
  // P(q) = e^W / (e^-W + e^W), W = g(|Up|) - g(|Down|).
  auto prob = [](double w_diff) { return 1.0 / (1.0 + std::exp(-2.0 * w_diff)); };

  // Linear: W = 100, probability astronomically close to 1 (rounds to
  // exactly 1.0 in double precision).
  EXPECT_GE(prob(100.0), 1.0 - 1e-12);

  // Ratio: W = log(1+10^6) - log(1+10^6-100) ~ 1e-4, probability ~ 0.5.
  const double ratio_w = std::log1p(1e6) - std::log1p(1e6 - 100);
  EXPECT_NEAR(prob(ratio_w), 0.5, 1e-4);

  // Logical: W = 1 - 1 = 0, probability exactly 0.5.
  EXPECT_DOUBLE_EQ(prob(0.0), 0.5);
}

TEST(VotingSemanticsTest, ExactEnumerationMatchesClosedForm) {
  // Small instance checked through the actual factor-graph machinery.
  for (Semantics s : {Semantics::kLinear, Semantics::kRatio, Semantics::kLogical}) {
    const double w_diff = factor::GCount(s, 8) - factor::GCount(s, 5);
    const double expected = 1.0 / (1.0 + std::exp(-2.0 * w_diff));
    EXPECT_NEAR(ExactVoteProbability(8, 5, s), expected, 1e-9)
        << SemanticsName(s);
  }
}

TEST(VotingSemanticsTest, LogicalIgnoresVoteStrength) {
  EXPECT_NEAR(ExactVoteProbability(100, 1, Semantics::kLogical), 0.5, 1e-9);
  EXPECT_GT(ExactVoteProbability(100, 1, Semantics::kRatio), 0.9);
  EXPECT_GT(ExactVoteProbability(100, 1, Semantics::kLinear), 1.0 - 1e-12);
}

/// Voting graph where the up/down votes are themselves query variables
/// (the Appendix A / Figure 13 setting).
FactorGraph VariableVotingGraph(size_t up, size_t down, Semantics semantics) {
  FactorGraph g;
  const VarId q = g.AddVariable();
  const VarId first_up = g.AddVariables(up);
  const VarId first_down = g.AddVariables(down);
  const WeightId w_up = g.AddWeight(1.0, false, "up");
  const WeightId w_down = g.AddWeight(-1.0, false, "down");
  const GroupId g_up = g.AddGroup(0, q, w_up, semantics);
  for (size_t i = 0; i < up; ++i) {
    g.AddClause(g_up, {{static_cast<VarId>(first_up + i), false}});
  }
  const GroupId g_down = g.AddGroup(1, q, w_down, semantics);
  for (size_t i = 0; i < down; ++i) {
    g.AddClause(g_down, {{static_cast<VarId>(first_down + i), false}});
  }
  return g;
}

/// Sweeps until q's running marginal is within `tol` of 0.5 (the symmetric
/// instance's exact answer), returning the sweep count (capped).
size_t SweepsToConverge(FactorGraph* g, double tol, size_t cap, uint64_t seed) {
  GibbsSampler sampler(g);
  World world(g);
  Rng rng(seed);
  world.InitValues(&rng, /*random_init=*/false);  // adversarial all-false start
  size_t q_true = 0;
  for (size_t sweep = 1; sweep <= cap; ++sweep) {
    sampler.Sweep(&world, &rng);
    q_true += world.value(0) ? 1 : 0;
    const double est = static_cast<double>(q_true) / static_cast<double>(sweep);
    if (sweep >= 20 && std::abs(est - 0.5) < tol) return sweep;
  }
  return cap;
}

TEST(VotingConvergenceTest, LogicalAndRatioConvergeFasterThanLinear) {
  // |U| = |D| = 40, all non-evidence: the exact marginal of q is 0.5 by
  // symmetry. Linear semantics bimodalizes the chain (Theorem A.9-style
  // behavior); Logical/Ratio mix quickly.
  const size_t cap = 4000;
  size_t linear_total = 0, logical_total = 0, ratio_total = 0;
  for (uint64_t seed : {101u, 102u, 103u}) {
    FactorGraph lin = VariableVotingGraph(40, 40, Semantics::kLinear);
    FactorGraph log = VariableVotingGraph(40, 40, Semantics::kLogical);
    FactorGraph rat = VariableVotingGraph(40, 40, Semantics::kRatio);
    linear_total += SweepsToConverge(&lin, 0.05, cap, seed);
    logical_total += SweepsToConverge(&log, 0.05, cap, seed);
    ratio_total += SweepsToConverge(&rat, 0.05, cap, seed);
  }
  EXPECT_LT(logical_total, linear_total);
  EXPECT_LT(ratio_total, linear_total);
}

}  // namespace
}  // namespace deepdive::inference
