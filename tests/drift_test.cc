// Appendix B.3 / B.4: warmstart incremental learning, with and without
// concept drift.
#include <gtest/gtest.h>

#include "inference/learner.h"
#include "kbc/drift.h"

namespace deepdive::kbc {
namespace {

inference::LearnerOptions TrainOptions(bool warmstart, size_t epochs) {
  inference::LearnerOptions options;
  options.epochs = epochs;
  options.warmstart = warmstart;
  options.learning_rate = 0.02;
  // Moderate regularization: an overfit stage-1 model saturates its weights
  // and stalls later contrastive-divergence updates.
  options.l2 = 0.05;
  options.seed = 17;
  return options;
}

TEST(DriftLearningTest, WarmstartReachesLowLossFasterAfterMoreLabels) {
  DriftOptions dopts;
  dopts.num_docs = 240;
  dopts.drift_point = 2.0;  // no drift in this test
  const auto docs = GenerateDriftStream(dopts);

  // Stage 1: train on 10% of labels.
  DriftModel warm = BuildDriftModel(docs, 0.1);
  inference::Learner(&warm.graph).Learn(TrainOptions(false, 40));

  // Stage 2: labels grow to 30%; warmstart vs cold.
  ExtendTraining(&warm, 0.3);
  DriftModel cold = BuildDriftModel(docs, 0.3);

  const double warm_loss_at_start = TestLoss(warm);
  const double cold_loss_at_start = TestLoss(cold);
  EXPECT_LT(warm_loss_at_start, cold_loss_at_start);

  // After a few incremental epochs the warmstarted model is at least as
  // good as a cold model given the same budget.
  inference::Learner(&warm.graph).Learn(TrainOptions(true, 10));
  inference::Learner(&cold.graph).Learn(TrainOptions(false, 10));
  EXPECT_LE(TestLoss(warm), TestLoss(cold) + 0.05);
}

TEST(DriftLearningTest, WarmstartStillHelpsUnderDrift) {
  DriftOptions dopts;
  dopts.num_docs = 240;
  dopts.drift_point = 0.2;  // drift happens inside the training prefix
  const auto docs = GenerateDriftStream(dopts);

  DriftModel warm = BuildDriftModel(docs, 0.1);
  inference::Learner(&warm.graph).Learn(TrainOptions(false, 40));
  ExtendTraining(&warm, 0.3);
  DriftModel cold = BuildDriftModel(docs, 0.3);

  // Both must converge to (roughly) the same loss with enough epochs —
  // the Appendix B.4 finding that drift does not break incremental
  // learning, it only shrinks the benefit.
  inference::Learner(&warm.graph).Learn(TrainOptions(true, 60));
  inference::Learner(&cold.graph).Learn(TrainOptions(false, 60));
  EXPECT_NEAR(TestLoss(warm), TestLoss(cold), 0.15);
}

TEST(DriftLearningTest, TrainingReducesTestLoss) {
  DriftOptions dopts;
  dopts.num_docs = 200;
  dopts.drift_point = 2.0;
  const auto docs = GenerateDriftStream(dopts);
  DriftModel model = BuildDriftModel(docs, 0.5);
  const double before = TestLoss(model);
  inference::Learner(&model.graph).Learn(TrainOptions(false, 50));
  const double after = TestLoss(model);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.6);
}

}  // namespace
}  // namespace deepdive::kbc
