// Quickstart: the smallest complete DeepDive program — declare a schema,
// load a few facts, write one candidate rule, one feature factor with a tied
// weight, label two examples, and read calibrated marginal probabilities.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/deepdive.h"
#include "util/thread_role.h"

int main() {
  // Trusted root: the example runs single-threaded on the serving thread.
  deepdive::serving_thread.AssertHeld();
  using namespace deepdive;

  // 1. The program: Example 2.2's shape in miniature.
  const char* program = R"(
    relation Person(sent: int, mention: int).
    relation Phrase(m1: int, m2: int, words: string).
    query relation HasSpouse(m1: int, m2: int).
    evidence HasSpouseLabel(m1: int, m2: int, l: bool) for HasSpouse.

    # R1: every co-occurring pair of person mentions is a candidate.
    rule CAND: HasSpouse(m1, m2) :-
      Person(s, m1), Person(s, m2), m1 != m2.

    # FE1: the phrase between two mentions is a feature; one learned weight
    # per distinct phrase (weight tying).
    factor FE1: HasSpouse(m1, m2) :- Phrase(m1, m2, w)
      weight = w(w) semantics = ratio.
  )";

  core::DeepDiveConfig config = core::FastTestConfig();
  auto dd = core::DeepDive::Create(program, config);
  if (!dd.ok()) {
    std::fprintf(stderr, "compile error: %s\n", dd.status().ToString().c_str());
    return 1;
  }

  // 2. Load data: three sentences, two phrased like marriages.
  auto check = [](const Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  check((*dd)->LoadRows("Person", {{Value(1), Value(10)},
                                   {Value(1), Value(11)},
                                   {Value(2), Value(20)},
                                   {Value(2), Value(21)},
                                   {Value(3), Value(30)},
                                   {Value(3), Value(31)}}));
  check((*dd)->LoadRows("Phrase", {{Value(10), Value(11), Value("and his wife")},
                                   {Value(20), Value(21), Value("and his wife")},
                                   {Value(30), Value(31), Value("met with")}}));
  // Distant labels: sentence-1's pair is married; sentence-3's is not.
  check((*dd)->LoadRows("HasSpouseLabel", {{Value(10), Value(11), Value(true)},
                                           {Value(30), Value(31), Value(false)}}));

  // 3. Ground, learn, infer.
  check((*dd)->Initialize());

  // 4. Read the knowledge base through the versioned query API: Query()
  // pins an immutable ResultView — safe from any thread, even while later
  // updates stream on the serving thread — and the epoch identifies which
  // publication these marginals belong to. The unlabeled pair (20, 21)
  // shares the "and his wife" feature with the positive example, so it
  // scores high; (31, 30) shares "met with" with the negative.
  auto view = (*dd)->Query();
  std::printf("result view epoch %llu (%s)\n",
              static_cast<unsigned long long>(view->epoch),
              view->report.label.c_str());
  std::printf("%-12s  %s\n", "probability", "fact");
  // Relation() returns nullptr when no candidate tuple was ever grounded.
  if (const auto* entries = view->Relation("HasSpouse")) {
    for (const auto& [tuple, p] : *entries) {
      std::printf("%-12.3f  HasSpouse%s\n", p, TupleToString(tuple).c_str());
    }
  }
  return 0;
}
