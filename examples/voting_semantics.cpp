// Example 2.5: how the choice of g(n) (Linear / Ratio / Logical, Figure 4)
// changes what the same evidence means. Conflicting up/down "born in" votes
// are aggregated under each semantics, exactly via the factor-graph
// machinery, plus the closed form for the paper's 10^6-vote scenario.
//
// Build & run:  ./build/examples/voting_semantics
#include <cmath>
#include <cstdio>

#include "factor/factor_graph.h"
#include "inference/exact.h"

using namespace deepdive;

namespace {

double VoteProbability(size_t up, size_t down, factor::Semantics semantics) {
  factor::FactorGraph g;
  const factor::VarId q = g.AddVariable();
  const auto w_up = g.AddWeight(1.0, false, "up");
  const auto w_down = g.AddWeight(-1.0, false, "down");
  const auto g_up = g.AddGroup(0, q, w_up, semantics);
  for (size_t i = 0; i < up; ++i) g.AddClause(g_up, {});
  const auto g_down = g.AddGroup(1, q, w_down, semantics);
  for (size_t i = 0; i < down; ++i) g.AddClause(g_down, {});
  auto exact = inference::ExactInference(g);
  return exact.ok() ? exact->marginals[q] : -1.0;
}

double ClosedForm(double up, double down, factor::Semantics semantics) {
  auto gn = [&](double n) {
    switch (semantics) {
      case factor::Semantics::kLinear:
        return n;
      case factor::Semantics::kRatio:
        return std::log1p(n);
      case factor::Semantics::kLogical:
        return n > 0 ? 1.0 : 0.0;
    }
    return 0.0;
  };
  const double w = gn(up) - gn(down);
  return 1.0 / (1.0 + std::exp(-2.0 * w));
}

}  // namespace

int main() {
  std::printf("q() :- Up(x) weight 1   /   q() :- Down(x) weight -1\n\n");
  std::printf("%8s %8s | %10s %10s %10s\n", "|Up|", "|Down|", "linear", "ratio",
              "logical");
  const struct {
    size_t up, down;
  } kCases[] = {{1, 0}, {5, 5}, {8, 5}, {100, 1}, {12, 10}};
  for (const auto& c : kCases) {
    std::printf("%8zu %8zu |", c.up, c.down);
    for (auto s : {factor::Semantics::kLinear, factor::Semantics::kRatio,
                   factor::Semantics::kLogical}) {
      std::printf(" %10.4f", VoteProbability(c.up, c.down, s));
    }
    std::printf("\n");
  }

  std::printf("\nExample 2.5's web-scale case, |Up| = 10^6, |Down| = 10^6 - 100\n");
  std::printf("(closed form; 100 extra votes out of a million are noise):\n");
  for (auto s : {factor::Semantics::kLinear, factor::Semantics::kRatio,
                 factor::Semantics::kLogical}) {
    std::printf("  %-8s P(q) = %.6f\n", factor::SemanticsName(s),
                ClosedForm(1e6, 1e6 - 100, s));
  }
  std::printf("\nLinear saturates to certainty; Ratio and Logical stay ~0.5 —\n"
              "no semantics subsumes the others (Section 2.4).\n");
  return 0;
}
