// The paper's headline scenario (Section 4.2): a developer iterates on a KBC
// system — analysis, new features, a new inference rule, new supervision —
// and the incremental engine delivers each iteration's results far faster
// than rerunning from scratch, with the same facts at the same confidences.
//
// Build & run:  ./build/examples/incremental_development
#include <cstdio>

#include "kbc/metrics.h"
#include "kbc/snapshots.h"

int main() {
  using namespace deepdive;

  kbc::SystemProfile profile = kbc::ProfileFor(kbc::SystemKind::kNews);
  profile.num_documents = 150;

  kbc::PipelineOptions options;
  options.config = core::FastTestConfig();
  options.seed = 4;

  std::printf("running the six-update development loop twice "
              "(Rerun vs Incremental)...\n\n");
  auto result = kbc::RunSnapshotComparison(profile, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-5s | %9s %9s %7s | %7s %7s | %-12s\n", "rule", "rerun(s)",
              "inc(s)", "x", "F1.re", "F1.inc", "strategy");
  for (const auto& row : result->rows) {
    std::printf("%-5s | %9.3f %9.3f %6.1fx | %7.3f %7.3f | %-12s\n",
                row.rule.c_str(), row.rerun_seconds, row.incremental_seconds,
                row.speedup, row.rerun_f1, row.incremental_f1,
                incremental::StrategyName(row.strategy));
  }
  std::printf("\ncumulative wall clock: rerun=%.3fs incremental=%.3fs "
              "(one-time materialization: %.3fs)\n",
              result->rerun_total_seconds, result->incremental_total_seconds,
              result->materialization_seconds);
  const auto& last = result->rows.back();
  std::printf("final marginal agreement: %.1f%% of high-confidence facts shared; "
              "%.1f%% of facts differ by more than 0.05\n",
              100.0 * last.high_confidence_agreement,
              100.0 * last.fraction_differing_05);
  return 0;
}
