// The paper's headline scenario (Section 4.2): a developer iterates on a KBC
// system — analysis, new features, a new inference rule, new supervision —
// and the incremental engine delivers each iteration's results far faster
// than rerunning from scratch, with the same facts at the same confidences.
// The epilogue walks the same loop through the versioned query API: every
// update publishes a new immutable ResultView, a pinned view keeps serving
// its epoch's marginals while later updates land, and readers on any thread
// can query without blocking the writer.
//
// Build & run:  ./build/examples/incremental_development
#include <cstdio>

#include "kbc/metrics.h"
#include "kbc/snapshots.h"
#include "util/thread_role.h"

int main() {
  // Trusted root: the example runs single-threaded on the serving thread.
  deepdive::serving_thread.AssertHeld();
  using namespace deepdive;

  kbc::SystemProfile profile = kbc::ProfileFor(kbc::SystemKind::kNews);
  profile.num_documents = 150;

  kbc::PipelineOptions options;
  options.config = core::FastTestConfig();
  options.seed = 4;

  std::printf("running the six-update development loop twice "
              "(Rerun vs Incremental)...\n\n");
  auto result = kbc::RunSnapshotComparison(profile, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-5s | %9s %9s %7s | %7s %7s | %-12s\n", "rule", "rerun(s)",
              "inc(s)", "x", "F1.re", "F1.inc", "strategy");
  for (const auto& row : result->rows) {
    std::printf("%-5s | %9.3f %9.3f %6.1fx | %7.3f %7.3f | %-12s\n",
                row.rule.c_str(), row.rerun_seconds, row.incremental_seconds,
                row.speedup, row.rerun_f1, row.incremental_f1,
                incremental::StrategyName(row.strategy));
  }
  std::printf("\ncumulative wall clock: rerun=%.3fs incremental=%.3fs "
              "(one-time materialization: %.3fs)\n",
              result->rerun_total_seconds, result->incremental_total_seconds,
              result->materialization_seconds);
  const auto& last = result->rows.back();
  std::printf("final marginal agreement: %.1f%% of high-confidence facts shared; "
              "%.1f%% of facts differ by more than 0.05\n",
              100.0 * last.high_confidence_agreement,
              100.0 * last.fraction_differing_05);

  // Epilogue: the development loop as seen through the versioned query API.
  std::printf("\nreplaying the loop through Query() (one epoch per update):\n");
  kbc::SystemProfile small = kbc::ProfileFor(kbc::SystemKind::kNews);
  small.num_documents = 40;
  auto pipeline = kbc::KbcPipeline::Build(small, options);
  if (!pipeline.ok() || !(*pipeline)->Initialize().ok()) {
    std::fprintf(stderr, "epilogue pipeline failed\n");
    return 1;
  }
  core::DeepDive& dd = (*pipeline)->deepdive();

  // Pin the initial view: it will keep answering with these marginals no
  // matter how many updates land after it (snapshot isolation).
  const auto initial = dd.Query();
  for (const std::string& rule : kbc::KbcPipeline::UpdateSequence()) {
    auto report = (*pipeline)->ApplyUpdate(rule);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-4s -> epoch %llu (%s)\n", rule.c_str(),
                static_cast<unsigned long long>(report->epoch),
                incremental::StrategyName(report->strategy));
  }
  const auto current = dd.Query();
  std::printf("pinned epoch %llu still serves its original marginals; "
              "current epoch is %llu\n",
              static_cast<unsigned long long>(initial->epoch),
              static_cast<unsigned long long>(current->epoch));
  std::printf("%-7s  %-12s  %s\n", "epoch", "probability", "fact");
  // Relation() returns nullptr when no candidate tuple was ever grounded.
  if (const auto* entries = current->Relation(kbc::KbcPipeline::QueryRelation())) {
    size_t shown = 0;
    for (const auto& [tuple, p] : *entries) {
      if (p < 0.7) continue;
      std::printf("%-7llu  %-12.3f  HasSpouse%s\n",
                  static_cast<unsigned long long>(current->epoch), p,
                  TupleToString(tuple).c_str());
      if (++shown >= 5) break;
    }
  }
  return 0;
}
