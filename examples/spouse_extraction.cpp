// End-to-end KBC run on a synthetic news corpus (the Figure 1 pipeline):
// corpus -> candidate generation -> feature extraction -> distant
// supervision -> grounding -> learning -> inference -> calibrated KB, with
// precision/recall/F1 and a calibration table at the end.
//
// Build & run:  ./build/examples/spouse_extraction
#include <cstdio>

#include "kbc/pipeline.h"
#include "util/thread_role.h"

int main() {
  // Trusted root: the example runs single-threaded on the serving thread.
  deepdive::serving_thread.AssertHeld();
  using namespace deepdive;

  kbc::SystemProfile profile = kbc::ProfileFor(kbc::SystemKind::kNews);
  profile.num_documents = 200;

  kbc::PipelineOptions options;
  options.config = core::FastTestConfig();
  options.config.mode = core::ExecutionMode::kIncremental;
  options.semantics = dsl::Semantics::kRatio;
  options.seed = 2026;

  auto pipeline = kbc::KbcPipeline::Build(profile, options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  if (auto s = (*pipeline)->Initialize(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("corpus: %zu sentences, %zu gold pairs (%zu in the distant KB)\n",
              (*pipeline)->corpus().sentences.size(),
              (*pipeline)->corpus().true_pairs.size(),
              (*pipeline)->corpus().known_pairs.size());

  // Develop the system through the six updates of Figure 8.
  for (const std::string& rule : kbc::KbcPipeline::UpdateSequence()) {
    auto report = (*pipeline)->ApplyUpdate(rule);
    if (!report.ok()) {
      std::fprintf(stderr, "update %s: %s\n", rule.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    const auto pr = (*pipeline)->EvaluateMentions(0.5);
    std::printf(
        "after %-4s  strategy=%-11s  ground=%.3fs learn=%.3fs infer=%.3fs  "
        "P=%.2f R=%.2f F1=%.2f\n",
        rule.c_str(), incremental::StrategyName(report->strategy),
        report->grounding_seconds, report->learning_seconds,
        report->inference_seconds, pr.precision, pr.recall, pr.f1);
  }

  // Fact-level output.
  const auto facts = (*pipeline)->EvaluateFacts(0.9);
  std::printf("\nfact level at p>0.9: precision=%.2f recall=%.2f f1=%.2f\n",
              facts.precision, facts.recall, facts.f1);

  // Calibration: probabilities should track empirical accuracy (Section 1).
  std::vector<double> probs;
  std::vector<bool> truth;
  const auto& corpus = (*pipeline)->corpus();
  for (const auto& [tuple, p] : (*pipeline)->deepdive().Marginals("HasSpouse")) {
    const int64_t sent = tuple[0].AsInt() / kbc::kMentionStride;
    if (sent < 0 || static_cast<size_t>(sent) >= corpus.sentences.size()) continue;
    probs.push_back(p);
    truth.push_back(corpus.sentences[static_cast<size_t>(sent)].expresses_relation);
  }
  std::printf("\ncalibration (bucket, count, mean p, empirical accuracy):\n");
  for (const auto& bucket : kbc::CalibrationCurve(probs, truth, 5)) {
    if (bucket.count == 0) continue;
    std::printf("  [%.1f, %.1f)  %5zu  %.2f  %.2f\n", bucket.lo, bucket.hi,
                bucket.count, bucket.mean_probability, bucket.empirical_accuracy);
  }

  // Error analysis (Section 2.2): what would the developer fix next?
  const auto errors = (*pipeline)->AnalyzeErrors(0.5, 3);
  std::printf("\nerror analysis: %zu/%zu correct at p>=0.5\n", errors.total_correct,
              errors.total_predictions);
  std::printf("top confident false positives:\n");
  for (const auto& e : errors.false_positives) {
    std::printf("  p=%.2f  %s  features: ", e.marginal,
                TupleToString(e.mention_pair).c_str());
    for (const auto& f : e.features) std::printf("%s ", f.c_str());
    std::printf("\n");
  }
  std::printf("strongest features (weight, precision, fires):\n");
  size_t shown = 0;
  for (const auto& s : errors.feature_stats) {
    if (++shown > 5) break;
    std::printf("  %+0.2f  %.2f  %4zu  %s\n", s.weight, s.precision,
                s.on_true + s.on_false, s.feature.c_str());
  }
  return 0;
}
