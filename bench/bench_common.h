#ifndef DEEPDIVE_BENCH_BENCH_COMMON_H_
#define DEEPDIVE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "factor/factor_graph.h"
#include "util/random.h"

namespace deepdive::bench {

/// Synthetic pairwise factor graph (the tradeoff-study workload of Section
/// 3.2.4): `n` variables, one pairwise factor per consecutive pair plus
/// random chords, weights U[-0.5, 0.5]; a `sparsity` fraction of factors
/// keeps a nonzero weight (the rest are zeroed, Figure 5(c)'s axis).
inline factor::FactorGraph PairwiseGraph(size_t n, double sparsity, uint64_t seed,
                                         double weight_scale = 0.5,
                                         double chords_per_var = 0.5) {
  factor::FactorGraph g;
  Rng rng(seed);
  if (n > 0) g.AddVariables(n);
  auto add_pair = [&](factor::VarId a, factor::VarId b) {
    const double w =
        rng.Bernoulli(sparsity) ? rng.Uniform(-weight_scale, weight_scale) : 0.0;
    g.AddSimpleFactor(a, {{b, false}}, g.AddWeight(w, false));
  };
  for (size_t i = 0; i + 1 < n; ++i) {
    add_pair(static_cast<factor::VarId>(i), static_cast<factor::VarId>(i + 1));
  }
  // Random chords for non-tree (and optionally dense) structure.
  const size_t chords = static_cast<size_t>(chords_per_var * static_cast<double>(n));
  for (size_t i = 0; i < chords; ++i) {
    const auto a = static_cast<factor::VarId>(rng.UniformInt(n));
    const auto b = static_cast<factor::VarId>(rng.UniformInt(n));
    if (a != b) add_pair(a, b);
  }
  for (size_t i = 0; i < n; ++i) {
    g.AddSimpleFactor(static_cast<factor::VarId>(i), {},
                      g.AddWeight(rng.Uniform(-0.2, 0.2), false));
  }
  return g;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace deepdive::bench

#endif  // DEEPDIVE_BENCH_BENCH_COMMON_H_
