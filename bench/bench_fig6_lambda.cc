// Figure 6: quality (F1) and number of factors of the News system under
// different regularization parameters λ for the variational approach.
// λ is applied at materialization time; the six updates then run through
// the incremental engine, whose supervision steps execute on the λ-sparsified
// approximate graph. Expected shape: #factors decreases monotonically in λ;
// quality is flat over a "safe region" of small λ, then drops once the
// approximation loses the correlations that propagate evidence (here: the
// entity-level fact layer, measured by fact-level F1).
#include <cstdio>

#include "bench_common.h"
#include "kbc/pipeline.h"
#include "util/thread_role.h"

namespace deepdive::bench {
namespace {

void Run() REQUIRES(serving_thread) {
  PrintHeader("Figure 6: News quality and #factors vs lambda");
  std::printf("%10s | %12s | %10s %10s\n", "lambda", "approx edges", "mention F1",
              "fact F1");
  for (double lambda : {0.001, 0.01, 0.1, 1.0, 10.0}) {
    kbc::SystemProfile profile = kbc::ProfileFor(kbc::SystemKind::kNews);
    profile.num_documents = 200;
    kbc::PipelineOptions options;
    options.config = core::FastTestConfig();
    options.config.mode = core::ExecutionMode::kIncremental;
    options.config.materialization.variational.lambda = lambda;
    options.seed = 5;

    auto pipeline = kbc::KbcPipeline::Build(profile, options);
    if (!pipeline.ok() || !(*pipeline)->Initialize().ok()) {
      std::printf("build failed\n");
      return;
    }
    bool ok = true;
    for (const std::string& rule : kbc::KbcPipeline::UpdateSequence()) {
      ok = ok && (*pipeline)->ApplyUpdate(rule).ok();
    }
    if (!ok) {
      std::printf("%10g | update failed\n", lambda);
      continue;
    }
    std::printf("%10g | %12zu | %10.3f %10.3f\n", lambda,
                (*pipeline)->deepdive().materialization_stats().variational_edges,
                (*pipeline)->EvaluateMentions(0.5).f1,
                (*pipeline)->EvaluateFacts(0.5).f1);
  }
  std::printf("\nThe λ search protocol (Section 3.2.3) starts small and grows λ\n"
              "tenfold until the marginal KL to the original exceeds a threshold;\n"
              "see incremental::SearchLambda (exercised in variational_test).\n");
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  // Trusted root: the bench main thread is the serving thread.
  deepdive::serving_thread.AssertHeld();
  deepdive::bench::Run();
  return 0;
}
