// Figure 14 (Appendix B.1): lesion study of factor-graph decomposition.
// After the News system is built and materialized, a developer-scale update
// touches a small fraction of the corpus (new features on 5% of the
// sentences). With decomposition, re-inference is confined to the touched
// per-sentence components; NoDecomposition re-runs the strategy over the
// whole graph. Expected shape: multi-x gap that grows with graph size.
#include <cstdio>

#include "bench_common.h"
#include "incremental/engine.h"
#include "kbc/pipeline.h"
#include "util/timer.h"
#include "util/thread_role.h"

namespace deepdive::bench {
namespace {

void Run() REQUIRES(serving_thread) {
  PrintHeader("Figure 14: decomposition lesion (small update on News)");
  std::printf("%12s | %-17s %-17s\n", "", "All", "NoDecomposition");
  std::printf("%12s | %8s %8s %8s %8s\n", "#sentences", "infer(s)", "affected",
              "infer(s)", "affected");

  for (size_t docs : {150u, 400u, 1000u}) {
    kbc::SystemProfile profile = kbc::ProfileFor(kbc::SystemKind::kNews);
    profile.num_documents = docs;
    kbc::PipelineOptions options;
    options.config = core::FastTestConfig();
    options.config.mode = core::ExecutionMode::kIncremental;
    options.entity_layer = false;  // per-sentence components
    options.seed = 21;

    auto pipeline = kbc::KbcPipeline::Build(profile, options);
    if (!pipeline.ok() || !(*pipeline)->Initialize().ok()) {
      std::printf("build failed\n");
      return;
    }
    for (const std::string& rule : kbc::KbcPipeline::UpdateSequence()) {
      if (!(*pipeline)->ApplyUpdate(rule).ok()) return;
    }
    auto& dd = (*pipeline)->deepdive();
    factor::FactorGraph* graph = dd.mutable_graph();

    std::printf("%12zu |", docs * profile.sentences_per_doc);
    for (bool decomposition : {true, false}) {
      // Fresh materialization of the developed system, then one small
      // update: a new feature factor on ~5% of the candidate pairs.
      incremental::IncrementalEngine engine(graph);
      incremental::MaterializationOptions mopts =
          options.config.materialization;
      mopts.num_samples = 400;
      if (!engine.Materialize(mopts).ok()) return;

      factor::GraphDelta delta;
      Rng rng(decomposition ? 5 : 5);  // identical delta for both arms
      const auto vars = dd.ground().VariablesOf(kbc::KbcPipeline::QueryRelation());
      const size_t touched = std::max<size_t>(1, vars.size() / 20);
      const factor::WeightId w = graph->AddWeight(0.6, true, "fig14");
      for (size_t i = 0; i < touched; ++i) {
        delta.new_groups.push_back(graph->AddSimpleFactor(
            vars[rng.UniformInt(vars.size())], {}, w));
      }

      incremental::EngineOptions eopts = options.config.engine;
      eopts.decomposition_enabled = decomposition;
      Timer timer;
      auto outcome = engine.ApplyDelta(delta, eopts);
      if (!outcome.ok()) return;
      std::printf(" %8.4f %8zu", timer.Seconds(), outcome->affected_vars);

      // Retract the probe factors so the next arm sees the same graph.
      for (factor::GroupId g : delta.new_groups) graph->DeactivateGroup(g);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  // Trusted root: the bench main thread is the serving thread.
  deepdive::serving_thread.AssertHeld();
  deepdive::bench::Run();
  return 0;
}
