// Replica-count sweep for the NUMA-style replicated Gibbs sampler: sweep
// throughput and marginal quality vs. the shared-world Hogwild sampler on
// the synthetic pairwise workload. Two axes:
//   (1) fixed one-thread-per-replica scaling (each added replica is an
//       independent private-world chain — the per-socket model), and
//   (2) a fixed total thread budget split across replica counts (how much
//       of the budget to spend on replication vs. intra-replica Hogwild).
// Meaningful speedups need a multi-core host; on a single-core container
// the replica workers serialize and the interesting column is the marginal
// error, which should stay flat across replica counts.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "inference/gibbs.h"
#include "inference/replicated_gibbs.h"
#include "util/timer.h"

namespace deepdive::bench {
namespace {

using inference::GibbsOptions;
using inference::MarginalResult;
using inference::ReplicatedGibbsSampler;

double MeanAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return a.empty() ? 0.0 : sum / static_cast<double>(a.size());
}

void Run() {
  const size_t kVars = 20000;
  const size_t kBurn = 20;
  const size_t kSamples = 60;
  factor::FactorGraph g = PairwiseGraph(kVars, 1.0, /*seed=*/7);

  GibbsOptions options;
  options.burn_in_sweeps = kBurn;
  options.sample_sweeps = kSamples;
  options.sync_every_sweeps = 20;
  options.seed = 11;

  // Sequential reference for the quality column.
  ReplicatedGibbsSampler reference(&g, 1, 1);
  const MarginalResult ref = reference.EstimateMarginals(options);

  const double total_sweeps = static_cast<double>(kBurn + kSamples);

  PrintHeader("replica scaling (1 thread per replica)");
  std::printf("%-10s %-10s %-12s %-14s %-10s\n", "replicas", "threads",
              "seconds", "sweeps/s", "mad");
  for (size_t replicas : {1u, 2u, 4u, 8u}) {
    ReplicatedGibbsSampler sampler(&g, replicas, replicas);
    Timer timer;
    const MarginalResult result = sampler.EstimateMarginals(options);
    const double secs = timer.Seconds();
    // Every replica runs the full schedule, so useful chain throughput is
    // replicas * schedule / wall time.
    std::printf("%-10zu %-10zu %-12.3f %-14.1f %-10.4f\n", replicas, replicas,
                secs, static_cast<double>(replicas) * total_sweeps / secs,
                MeanAbsDiff(result.marginals, ref.marginals));
  }

  PrintHeader("fixed budget of 8 threads, split across replicas");
  std::printf("%-10s %-14s %-12s %-14s %-10s\n", "replicas", "thr/replica",
              "seconds", "sweeps/s", "mad");
  for (size_t replicas : {1u, 2u, 4u, 8u}) {
    ReplicatedGibbsSampler sampler(&g, replicas, 8);
    Timer timer;
    const MarginalResult result = sampler.EstimateMarginals(options);
    const double secs = timer.Seconds();
    std::printf("%-10zu %-14zu %-12.3f %-14.1f %-10.4f\n", replicas,
                sampler.threads_per_replica(), secs,
                static_cast<double>(replicas) * total_sweeps / secs,
                MeanAbsDiff(result.marginals, ref.marginals));
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  deepdive::bench::Run();
  return 0;
}
