// Figure 7: statistics of the five KBC systems — the paper's corpus sizes
// alongside this reproduction's scaled synthetic equivalents, with the
// grounded factor-graph sizes after the full rule sequence.
#include <cstdio>

#include "bench_common.h"
#include "kbc/pipeline.h"
#include "util/thread_role.h"

namespace deepdive::bench {
namespace {

void Run() REQUIRES(serving_thread) {
  PrintHeader("Figure 7: statistics of KBC systems (paper scale -> scaled repro)");
  std::printf("%-14s | %10s %6s %7s | %10s %10s %10s\n", "System", "paper#docs",
              "#rels", "#rules", "repro#docs", "#vars", "#factors");
  for (const auto& profile : kbc::AllProfiles()) {
    kbc::PipelineOptions options;
    options.config = core::FastTestConfig();
    options.config.mode = core::ExecutionMode::kIncremental;
    options.seed = 13;
    auto pipeline = kbc::KbcPipeline::Build(profile, options);
    if (!pipeline.ok() || !(*pipeline)->Initialize().ok()) {
      std::printf("%-14s | build failed\n", profile.name.c_str());
      continue;
    }
    for (const std::string& rule : kbc::KbcPipeline::UpdateSequence()) {
      auto r = (*pipeline)->ApplyUpdate(rule);
      if (!r.ok()) {
        std::printf("%-14s | update %s failed: %s\n", profile.name.c_str(),
                    rule.c_str(), r.status().ToString().c_str());
        break;
      }
    }
    const auto& graph = (*pipeline)->deepdive().ground().graph;
    std::printf("%-14s | %10zu %6zu %7zu | %10zu %10zu %10zu\n", profile.name.c_str(),
                profile.paper_docs, profile.paper_relations, profile.paper_rules,
                profile.num_documents, graph.NumVariables(), graph.NumActiveClauses());
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  // Trusted root: the bench main thread is the serving thread.
  deepdive::serving_thread.AssertHeld();
  deepdive::bench::Run();
  return 0;
}
