// Figure 16 (Appendix B.3): convergence of incremental learning strategies.
// A model is trained on an initial snapshot; then new features and labels
// arrive (the F2 + S2 update of the News workload is emulated by a larger
// labeled prefix). Compared: SGD+Warmstart (DeepDive), SGD-Warmstart, and
// averaged-gradient descent + Warmstart. Expected shape: SGD+Warmstart
// reaches within 10% of the optimal loss first (~2x faster than
// SGD-Warmstart, much faster than GD).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "inference/learner.h"
#include "kbc/drift.h"
#include "util/timer.h"

namespace deepdive::bench {
namespace {

struct Curve {
  const char* name;
  std::vector<double> times;
  std::vector<double> losses;
};

void Run() {
  PrintHeader("Figure 16: convergence of incremental learning strategies");

  kbc::DriftOptions dopts;
  dopts.num_docs = 1000;
  dopts.vocab_size = 120;
  dopts.drift_point = 2.0;   // stationary stream
  dopts.seed = 77;
  const auto docs = kbc::GenerateDriftStream(dopts);

  // Proxy for the optimal loss: long training run.
  double optimal;
  {
    kbc::DriftModel model = kbc::BuildDriftModel(docs, 0.5);
    inference::LearnerOptions lopts;
    lopts.epochs = 200;
    lopts.warmstart = false;
    lopts.learning_rate = 0.006;
    lopts.decay = 0.995;
    lopts.l2 = 0.01;
    inference::Learner(&model.graph).Learn(lopts);
    optimal = kbc::TestLoss(model);
  }
  std::printf("optimal-loss proxy: %.4f\n", optimal);

  auto make_warm_model = [&]() {
    kbc::DriftModel model = kbc::BuildDriftModel(docs, 0.1);
    inference::LearnerOptions lopts;
    lopts.epochs = 10;
    lopts.warmstart = false;
    lopts.learning_rate = 0.015;
    lopts.decay = 0.99;
    lopts.l2 = 0.05;
    inference::Learner(&model.graph).Learn(lopts);
    kbc::ExtendTraining(&model, 0.5);  // new labels arrive
    return model;
  };

  struct Strategy {
    const char* name;
    bool warmstart;
    size_t sweeps_per_epoch;
  };
  const Strategy kStrategies[] = {
      {"SGD+Warmstart", true, 1},
      {"SGD-Warmstart", false, 1},
      {"GD+Warmstart", true, 8},
  };

  std::vector<Curve> curves;
  for (const Strategy& strategy : kStrategies) {
    kbc::DriftModel model = make_warm_model();
    if (!strategy.warmstart) {
      // Cold start: wipe the warm model's weights.
      for (factor::WeightId w = 0; w < model.graph.NumWeights(); ++w) {
        if (model.graph.weight(w).learnable) model.graph.SetWeightValue(w, 0.0);
      }
    }
    Curve curve;
    curve.name = strategy.name;
    inference::Learner learner(&model.graph);
    Timer timer;
    curve.times.push_back(0.0);
    curve.losses.push_back(kbc::TestLoss(model));
    for (int epoch = 0; epoch < 150; ++epoch) {
      inference::LearnerOptions lopts;
      lopts.epochs = 1;
      lopts.warmstart = true;  // continue from the current weights
      lopts.learning_rate = 0.0012 * std::pow(0.998, epoch);
      lopts.l2 = 0.01;
      lopts.sweeps_per_epoch = strategy.sweeps_per_epoch;
      lopts.seed = 31 + epoch;
      learner.Learn(lopts);
      curve.times.push_back(timer.Seconds());
      curve.losses.push_back(kbc::TestLoss(model));
    }
    curves.push_back(std::move(curve));
  }

  std::printf("\nloss curves (first 8 epochs):\n%6s", "epoch");
  for (const Curve& curve : curves) std::printf(" %14s", curve.name);
  std::printf("\n");
  for (size_t i = 0; i <= 8; ++i) {
    std::printf("%6zu", i);
    for (const Curve& curve : curves) std::printf(" %14.4f", curve.losses[i]);
    std::printf("\n");
  }

  std::printf("\n%-15s | %12s | %s\n", "Strategy", "start loss",
              "seconds to reach within 10% of optimal (epochs)");
  for (const Curve& curve : curves) {
    double reached = -1;
    int at_epoch = -1;
    for (size_t i = 0; i < curve.losses.size(); ++i) {
      if (curve.losses[i] <= optimal * 1.05 + 0.01) {
        reached = curve.times[i];
        at_epoch = static_cast<int>(i);
        break;
      }
    }
    if (reached < 0) {
      std::printf("%-15s | %12.4f | not reached in 150 epochs (final %.4f)\n",
                  curve.name, curve.losses.front(), curve.losses.back());
    } else {
      std::printf("%-15s | %12.4f | %.4f s (epoch %d)\n", curve.name,
                  curve.losses.front(), reached, at_epoch);
    }
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  deepdive::bench::Run();
  return 0;
}
