// Query throughput through the versioned snapshot API: queries/sec from
// 1-8 reader threads, each pinning a ResultView (DeepDive::Query) and doing
// one tuple lookup per pin — first against an idle serving thread, then
// while the serving thread streams updates (data inserts and analysis
// steps) with background rematerializations swapping snapshots underneath.
// Readers never take a lock, so throughput should scale with reader count
// and the update stream should cost readers nothing beyond cache traffic.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/deepdive.h"
#include "util/logging.h"
#include "util/thread_role.h"
#include "util/timer.h"

namespace deepdive::bench {
namespace {

constexpr double kSecondsPerConfig = 0.4;
constexpr size_t kSentences = 60;

std::unique_ptr<core::DeepDive> BuildServing() REQUIRES(serving_thread) {
  const char* program = R"(
    relation Person(sent: int, mention: int).
    relation Phrase(m1: int, m2: int, words: string).
    query relation HasSpouse(m1: int, m2: int).
    evidence HasSpouseLabel(m1: int, m2: int, l: bool) for HasSpouse.
    rule CAND: HasSpouse(m1, m2) :-
      Person(s, m1), Person(s, m2), m1 != m2.
    factor FE1: HasSpouse(m1, m2) :- Phrase(m1, m2, w)
      weight = w(w) semantics = ratio.
  )";
  core::DeepDiveConfig config = core::FastTestConfig();
  config.materialization.async = true;
  config.materialization.remat_after_updates = 4;
  config.engine.mh_target_steps = 50;
  config.engine.gibbs.burn_in_sweeps = 5;
  config.engine.gibbs.sample_sweeps = 50;
  config.engine.rerun_gibbs.burn_in_sweeps = 5;
  config.engine.rerun_gibbs.sample_sweeps = 50;
  auto dd = core::DeepDive::Create(program, config);
  DD_CHECK(dd.ok()) << dd.status().ToString();
  std::vector<Tuple> persons, phrases, labels;
  for (size_t s = 1; s <= kSentences; ++s) {
    const auto sent = static_cast<int64_t>(s);
    persons.push_back({Value(sent), Value(sent * 10)});
    persons.push_back({Value(sent), Value(sent * 10 + 1)});
    phrases.push_back({Value(sent * 10), Value(sent * 10 + 1),
                       Value(s % 2 ? "and his wife" : "met with")});
  }
  labels.push_back({Value(10), Value(11), Value(true)});
  labels.push_back({Value(20), Value(21), Value(false)});
  DD_CHECK((*dd)->LoadRows("Person", persons).ok());
  DD_CHECK((*dd)->LoadRows("Phrase", phrases).ok());
  DD_CHECK((*dd)->LoadRows("HasSpouseLabel", labels).ok());
  DD_CHECK((*dd)->Initialize().ok());
  return std::move(dd).value();
}

/// Runs `readers` query threads for kSecondsPerConfig against `dd` and
/// returns total queries served. Each pin does one indexed lookup so the
/// workload is a realistic point query, not just a pointer load.
uint64_t RunReaders(const core::DeepDive& dd, size_t readers) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total{0};
  // lint:allow(raw-thread) the reader threads ARE the benchmark: plain
  // threads pinning views at full tilt, deliberately not ThreadPool tasks.
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t t = 0; t < readers; ++t) {
    threads.emplace_back([&dd, &stop, &total] {
      uint64_t queries = 0;
      uint64_t last_epoch = 0;
      // ordering: relaxed — quit hint; join() below publishes the tallies.
      while (!stop.load(std::memory_order_relaxed)) {
        const auto view = dd.Query();
        DD_CHECK(view->epoch >= last_epoch);
        last_epoch = view->epoch;
        const auto* entries = view->Relation("HasSpouse");
        if (entries != nullptr && !entries->empty()) {
          const auto& probe = (*entries)[queries % entries->size()];
          DD_CHECK(view->MarginalOf("HasSpouse", probe.first) == probe.second);
        }
        ++queries;
      }
      total.fetch_add(queries);
    });
  }
  Timer timer;
  while (timer.Seconds() < kSecondsPerConfig) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  return total.load();
}

/// The concurrent update stream: applied by the serving thread until
/// `stop`, cycling data inserts (structural deltas that trigger remats) and
/// analysis-only refreshes.
void StreamUpdates(core::DeepDive* dd, const std::atomic<bool>* stop,
                   size_t* updates_applied) {
  // Serving-role handoff: main() builds the instance, then stays off the
  // serving surface until after join() — for the streaming window this
  // writer thread IS the serving thread.
  serving_thread.AssertHeld();
  size_t u = 0;
  // ordering: relaxed — quit hint; the caller's join() orders *updates_applied.
  while (!stop->load(std::memory_order_relaxed)) {
    core::UpdateSpec spec;
    spec.label = "stream#" + std::to_string(u);
    if (u % 2 == 0) {
      const auto m = static_cast<int64_t>(10000 + u * 10);
      spec.inserts["Person"] = {{Value(1000 + static_cast<int64_t>(u)), Value(m)},
                                {Value(1000 + static_cast<int64_t>(u)), Value(m + 1)}};
      spec.inserts["Phrase"] = {
          {Value(m), Value(m + 1), Value(u % 4 ? "and his wife" : "met with")}};
    } else {
      spec.analysis_only = true;
    }
    auto report = dd->ApplyUpdate(spec);
    DD_CHECK(report.ok()) << report.status().ToString();
    ++u;
  }
  *updates_applied = u;
}

void Run() REQUIRES(serving_thread) {
  PrintHeader("query throughput vs reader count (versioned snapshot API)");
  std::printf("%8s  %16s  %16s  %10s\n", "readers", "idle q/s",
              "streaming q/s", "updates");
  for (const size_t readers : {1u, 2u, 4u, 8u}) {
    // Fresh serving instance per config: the streaming run grows the graph,
    // and reusing it would skew the next config's per-query cost.
    auto idle_dd = BuildServing();
    const uint64_t idle = RunReaders(*idle_dd, readers);

    auto streaming_dd = BuildServing();
    std::atomic<bool> stop_updates{false};
    size_t updates_applied = 0;
    std::thread writer(StreamUpdates, streaming_dd.get(), &stop_updates,
                       &updates_applied);
    const uint64_t streaming = RunReaders(*streaming_dd, readers);
    stop_updates.store(true);
    writer.join();
    DD_CHECK(streaming_dd->incremental_engine()->WaitForMaterialization().ok());

    std::printf("%8zu  %16.0f  %16.0f  %10zu\n", readers,
                static_cast<double>(idle) / kSecondsPerConfig,
                static_cast<double>(streaming) / kSecondsPerConfig,
                updates_applied);
  }
  std::printf("\n(each pin = one Query() + one indexed MarginalOf; streaming "
              "column races a\n live update stream with background "
              "rematerialization swaps)\n");
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  // Trusted root: the process main thread is the serving thread (it hands
  // the role to the StreamUpdates writer for the streaming window).
  deepdive::serving_thread.AssertHeld();
  deepdive::bench::Run();
  return 0;
}
