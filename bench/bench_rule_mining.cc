// Online program-evolution benchmark: first-class rule-delta latency vs. the
// Rerun baseline (a rule arriving as a full re-ground + re-learn + re-infer),
// exact-restore retraction latency, and the rule miner's end-to-end
// throughput (candidate generation + engine trials per second). Emits
// BENCH_rule_mining.json for the CI artifact.
//
// The run doubles as a regression gate: it exits nonzero if the incremental
// AddRule's grounding work is not exactly the new rule's match count (the
// proportional-work contract), or if the retraction is not an exact journal
// restore (acceptance 1.0), or if the miner fails to promote the planted
// rule from the synthetic co-occurrence data.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/deepdive.h"
#include "mining/miner.h"
#include "util/thread_role.h"
#include "util/timer.h"

namespace deepdive::bench {
namespace {

struct Args {
  size_t pairs = 2000;
  std::string out = "BENCH_rule_mining.json";
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--pairs") {
      args.pairs = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--out") {
      args.out = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
    }
  }
  return args;
}

constexpr char kProgram[] = R"(
  relation Pair(a: int, b: int).
  query relation Match(a: int, b: int).
  evidence MatchEv(a: int, b: int, l: bool) for Match.
  rule CAND: Match(a, b) :- Pair(a, b).
  factor PRIOR: Match(a, b) :- Pair(a, b) weight = -0.2 semantics = logical.
)";

constexpr char kRule[] =
    "factor FE1: Match(a, b) :- Pair(a, b) weight = 0.8 semantics = logical.";

std::unique_ptr<core::DeepDive> MakeInstance(size_t pairs,
                                             core::ExecutionMode mode)
    REQUIRES(serving_thread) {
  core::DeepDiveConfig config = core::FastTestConfig();
  config.mode = mode;
  auto dd = core::DeepDive::Create(kProgram, config);
  if (!dd.ok()) {
    std::fprintf(stderr, "create: %s\n", dd.status().ToString().c_str());
    return nullptr;
  }
  std::vector<Tuple> pair_rows, ev_rows;
  for (size_t i = 0; i < pairs; ++i) {
    const int a = static_cast<int>(i);
    const int b = static_cast<int>(i + 1000000);
    pair_rows.push_back({Value(a), Value(b)});
    // 7-in-8 positive labels: strong planted co-occurrence signal.
    ev_rows.push_back({Value(a), Value(b), Value(i % 8 != 0)});
  }
  if (!(*dd)->LoadRows("Pair", pair_rows).ok() ||
      !(*dd)->LoadRows("MatchEv", ev_rows).ok() ||
      !(*dd)->Initialize().ok()) {
    std::fprintf(stderr, "initialize failed\n");
    return nullptr;
  }
  return std::move(dd).value();
}

int Run(int argc, char** argv) {
  deepdive::serving_thread.AssertHeld();
  const Args args = ParseArgs(argc, argv);

  PrintHeader("rule delta: incremental AddRule vs. Rerun baseline");
  auto incremental = MakeInstance(args.pairs, core::ExecutionMode::kIncremental);
  auto rerun = MakeInstance(args.pairs, core::ExecutionMode::kRerun);
  if (incremental == nullptr || rerun == nullptr) return 1;

  Timer add_timer;
  auto added = incremental->AddRule(kRule);
  const double add_s = add_timer.Seconds();
  if (!added.ok()) {
    std::fprintf(stderr, "AddRule: %s\n", added.status().ToString().c_str());
    return 1;
  }
  std::printf("incremental add   %8.1f ms  (grounding work %llu)\n",
              add_s * 1e3,
              static_cast<unsigned long long>(added->grounding_work));
  if (added->grounding_work != args.pairs) {
    std::fprintf(stderr,
                 "PROPORTIONAL-WORK VIOLATION: grounded %llu, rule matches "
                 "%zu\n",
                 static_cast<unsigned long long>(added->grounding_work),
                 args.pairs);
    return 1;
  }

  Timer retract_timer;
  auto retracted = incremental->RetractRule("FE1");
  const double retract_s = retract_timer.Seconds();
  if (!retracted.ok()) {
    std::fprintf(stderr, "RetractRule: %s\n",
                 retracted.status().ToString().c_str());
    return 1;
  }
  std::printf("exact retract     %8.1f ms  (acceptance %.2f)\n",
              retract_s * 1e3, retracted->acceptance_rate);
  if (retracted->acceptance_rate != 1.0) {
    std::fprintf(stderr, "EXACT-RESTORE VIOLATION: acceptance %.3f != 1.0\n",
                 retracted->acceptance_rate);
    return 1;
  }

  Timer rerun_timer;
  auto rerun_added = rerun->AddRule(kRule);
  const double rerun_s = rerun_timer.Seconds();
  if (!rerun_added.ok()) {
    std::fprintf(stderr, "rerun AddRule: %s\n",
                 rerun_added.status().ToString().c_str());
    return 1;
  }
  const double speedup = rerun_s / add_s;
  std::printf("rerun baseline    %8.1f ms  (%.1fx slower than incremental)\n",
              rerun_s * 1e3, speedup);

  PrintHeader("miner throughput: propose + trial + promote");
  mining::MinerOptions options;
  options.min_likelihood_gain = 1e-6;
  Timer ctor_timer;
  mining::RuleMiner miner(incremental.get(), options);
  const double seed_s = ctor_timer.Seconds();
  Timer mine_timer;
  auto report = miner.Mine(/*max_promotions=*/1);
  const double mine_s = mine_timer.Seconds();
  if (!report.ok()) {
    std::fprintf(stderr, "Mine: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const double trials_per_s =
      mine_s > 0.0 ? static_cast<double>(report->candidates_trialed) / mine_s
                   : 0.0;
  std::printf("stats seed        %8.1f ms  (full scan, once)\n", seed_s * 1e3);
  std::printf("mine pass         %8.1f ms  (%zu considered, %zu trialed, "
              "%.1f trials/s)\n",
              mine_s * 1e3, report->candidates_considered,
              report->candidates_trialed, trials_per_s);
  if (report->promoted.empty()) {
    std::fprintf(stderr, "MINER FAILURE: planted rule not promoted\n");
    return 1;
  }
  std::printf("promoted          %s\n", report->promoted.front().c_str());

  std::FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"rule_mining\",\n"
               "  \"pairs\": %zu,\n"
               "  \"add_rule_incremental_ms\": %.3f,\n"
               "  \"add_rule_rerun_ms\": %.3f,\n"
               "  \"rule_delta_speedup\": %.3f,\n"
               "  \"grounding_work\": %llu,\n"
               "  \"proportional_work\": true,\n"
               "  \"retract_ms\": %.3f,\n"
               "  \"exact_restore\": true,\n"
               "  \"stats_seed_ms\": %.3f,\n"
               "  \"mine_pass_ms\": %.3f,\n"
               "  \"candidates_considered\": %zu,\n"
               "  \"candidates_trialed\": %zu,\n"
               "  \"trials_per_second\": %.2f,\n"
               "  \"promoted\": %zu\n"
               "}\n",
               args.pairs, add_s * 1e3, rerun_s * 1e3, speedup,
               static_cast<unsigned long long>(added->grounding_work),
               retract_s * 1e3, seed_s * 1e3, mine_s * 1e3,
               report->candidates_considered, report->candidates_trialed,
               trials_per_s, report->promoted.size());
  std::fclose(out);
  std::printf("\nwrote %s\n", args.out.c_str());
  return 0;
}

}  // namespace
}  // namespace deepdive::bench

int main(int argc, char** argv) { return deepdive::bench::Run(argc, argv); }
