// Incremental grounding (Section 3.1 / Section 4.2 text): DRed delta rules
// vs re-evaluating the candidate-generation and feature queries from
// scratch. The paper reports up to 360x for rule FE1 on News; the shape to
// reproduce is speedup growing with corpus size for a fixed-size update.
#include <cstdio>

#include "bench_common.h"
#include "dsl/program.h"
#include "engine/view_maintenance.h"
#include "grounding/grounder.h"
#include "grounding/incremental_grounder.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace deepdive::bench {
namespace {

constexpr char kProgram[] = R"(
  relation Person(s: int, m: int).
  relation Feature(m1: int, m2: int, f: string).
  query relation HasSpouse(m1: int, m2: int).
  evidence HasSpouseEv(m1: int, m2: int, l: bool) for HasSpouse.
  rule CAND: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
  factor FE1: HasSpouse(m1, m2) :- Feature(m1, m2, f) weight = w(f) semantics = ratio.
)";

struct System {
  dsl::Program program;
  Database db;
  std::unique_ptr<engine::ViewMaintainer> vm;
  grounding::GroundGraph ground;
  std::unique_ptr<grounding::IncrementalGrounder> grounder;
  double ground_seconds = 0.0;  // GroundAll wall time
};

std::unique_ptr<System> Build(size_t sentences, uint64_t seed,
                              grounding::GroundingOptions options = {}) {
  auto sys = std::make_unique<System>();
  auto p = dsl::CompileProgram(kProgram);
  if (!p.ok()) return nullptr;
  sys->program = std::move(p).value();
  if (!sys->program.InstantiateSchema(&sys->db).ok()) return nullptr;
  Rng rng(seed);
  Table* person = sys->db.GetTable("Person");
  Table* feature = sys->db.GetTable("Feature");
  for (size_t s = 0; s < sentences; ++s) {
    const int64_t m1 = static_cast<int64_t>(s * 10 + 1);
    const int64_t m2 = static_cast<int64_t>(s * 10 + 2);
    (void)person->Insert({Value(static_cast<int64_t>(s)), Value(m1)});
    (void)person->Insert({Value(static_cast<int64_t>(s)), Value(m2)});
    (void)feature->Insert(
        {Value(m1), Value(m2), Value(StrFormat("f%zu", rng.UniformInt(30)))});
  }
  sys->vm = std::make_unique<engine::ViewMaintainer>(&sys->program, &sys->db);
  if (!sys->vm->Initialize().ok()) return nullptr;
  sys->grounder = std::make_unique<grounding::IncrementalGrounder>(
      &sys->program, &sys->db, &sys->ground, options);
  if (!sys->grounder->Initialize().ok()) return nullptr;
  Timer ground_timer;
  if (!sys->grounder->GroundAll().ok()) return nullptr;
  sys->ground_seconds = ground_timer.Seconds();
  return sys;
}

/// Thread-count sweep over the largest synthetic program: per-thread
/// grounding throughput for recording speedup curves on multi-core hosts.
/// Output must be bit-identical at every thread count (the determinism suite
/// asserts this; here we only cross-check the aggregate stats).
void RunThreadSweep() {
  PrintHeader("Sharded grounding: thread-count sweep (full GroundAll)");
  constexpr size_t kSentences = 20000;
  std::printf("%8s | %12s %16s | %8s\n", "threads", "ground (s)", "clauses/s",
              "speedup");
  double base_seconds = 0.0;
  size_t base_clauses = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    grounding::GroundingOptions options;
    options.num_threads = threads;
    auto sys = Build(kSentences, 3, options);
    if (sys == nullptr) {
      std::printf("build failed\n");
      return;
    }
    const size_t clauses = sys->ground.graph.NumClauses();
    if (threads == 1) {
      base_seconds = sys->ground_seconds;
      base_clauses = clauses;
    } else if (clauses != base_clauses) {
      std::printf("DETERMINISM VIOLATION: %zu clauses at %zu threads vs %zu\n",
                  clauses, threads, base_clauses);
      return;
    }
    std::printf("%8zu | %12.4f %16.0f | %7.2fx\n", threads, sys->ground_seconds,
                sys->ground_seconds > 0
                    ? static_cast<double>(clauses) / sys->ground_seconds
                    : 0.0,
                sys->ground_seconds > 0 ? base_seconds / sys->ground_seconds : 0.0);
  }
}

void Run() {
  PrintHeader("Incremental grounding: DRed delta rules vs full regrounding");
  std::printf("%10s | %14s %14s | %8s\n", "#sentences", "full (s)", "delta (s)",
              "speedup");
  for (size_t sentences : {500u, 2000u, 8000u, 20000u}) {
    auto inc = Build(sentences, 3);
    if (inc == nullptr) {
      std::printf("build failed\n");
      return;
    }

    // The update: 10 new sentences worth of data.
    engine::RelationDeltas external;
    for (size_t i = 0; i < 10; ++i) {
      const int64_t s = static_cast<int64_t>(sentences + i);
      const int64_t m1 = s * 10 + 1, m2 = s * 10 + 2;
      external["Person"].Add({Value(s), Value(m1)}, 1);
      external["Person"].Add({Value(s), Value(m2)}, 1);
      external["Feature"].Add({Value(m1), Value(m2), Value("fnew")}, 1);
    }

    Timer delta_timer;
    auto set_deltas = inc->vm->ApplyUpdate(external);
    if (!set_deltas.ok()) return;
    auto gdelta = inc->grounder->ApplyRelationDeltas(*set_deltas);
    if (!gdelta.ok()) return;
    const double delta_seconds = delta_timer.Seconds();

    // Full regrounding of the updated state: fresh views + fresh grounding.
    Timer full_timer;
    auto full = Build(sentences + 10, 3);
    if (full == nullptr) return;
    const double full_seconds = full_timer.Seconds();

    std::printf("%10zu | %14.5f %14.5f | %7.1fx\n", sentences, full_seconds,
                delta_seconds, delta_seconds > 0 ? full_seconds / delta_seconds : 0.0);
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  deepdive::bench::Run();
  deepdive::bench::RunThreadSweep();
  return 0;
}
