// Figure 9: end-to-end efficiency of incremental inference and learning.
// For each of the five KBC systems and each rule update (Figure 8's
// templates A1, FE1, FE2, I1, S1, S2), the statistical-inference+learning
// time of Rerun vs Incremental and the speedup. Expected shape: A1 has the
// largest speedup (100% MH acceptance, no learning), FE/S/I rules speed up
// less; Incremental never loses.
#include <cstdio>

#include "bench_common.h"
#include "kbc/snapshots.h"
#include "util/thread_role.h"

namespace deepdive::bench {
namespace {

void Run() REQUIRES(serving_thread) {
  PrintHeader("Figure 9: Rerun vs Incremental, inference+learning seconds per update");
  std::printf("%-5s", "Rule");
  for (const auto& profile : kbc::AllProfiles()) {
    std::printf(" | %-24s", profile.name.c_str());
  }
  std::printf("\n%-5s", "");
  for (size_t i = 0; i < 5; ++i) std::printf(" | %8s %8s %6s", "Rerun", "Inc.", "x");
  std::printf("\n");

  std::vector<kbc::SnapshotComparison> results;
  for (const auto& profile : kbc::AllProfiles()) {
    kbc::SystemProfile scaled = profile;
    scaled.num_documents = std::min<size_t>(profile.num_documents, 250);
    kbc::PipelineOptions options;
    options.config = core::FastTestConfig();
    options.seed = 11;
    auto result = kbc::RunSnapshotComparison(scaled, options);
    if (!result.ok()) {
      std::printf("snapshot comparison failed for %s: %s\n", profile.name.c_str(),
                  result.status().ToString().c_str());
      return;
    }
    results.push_back(std::move(result).value());
  }

  const auto sequence = kbc::KbcPipeline::UpdateSequence();
  for (size_t r = 0; r < sequence.size(); ++r) {
    std::printf("%-5s", sequence[r].c_str());
    for (const auto& result : results) {
      const kbc::SnapshotRow& row = result.rows[r];
      std::printf(" | %8.3f %8.3f %5.1fx", row.rerun_seconds, row.incremental_seconds,
                  row.speedup);
    }
    std::printf("\n");
  }

  std::printf("\nStrategy chosen by the optimizer (News column):\n");
  const auto& news = results[1];
  for (const auto& row : news.rows) {
    std::printf("  %-4s -> %-12s acceptance=%.3f\n", row.rule.c_str(),
                incremental::StrategyName(row.strategy), row.acceptance_rate);
  }
  std::printf("\nMarginal agreement (Section 4.2, News): ");
  std::printf("high-conf agreement=%.3f, frac |dp|>0.05=%.3f\n",
              news.rows.back().high_confidence_agreement,
              news.rows.back().fraction_differing_05);
  std::printf("One-time materialization cost (News): %.3f s\n",
              news.materialization_seconds);
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  // Trusted root: the bench main thread is the serving thread.
  deepdive::serving_thread.AssertHeld();
  deepdive::bench::Run();
  return 0;
}
