// Serving-stack saturation benchmark: a fleet of query connections against a
// deepdive_serve-shaped stack (registry + dispatcher + socket server, all
// in-process but over real TCP) while updater clients stream apply_update
// requests into a deliberately small admission-controlled queue. Reports
// query latency (p50/p99) idle vs. saturated, update throughput, and the
// shed rate — the measurement behind the admission-control watermarks
// documented in README. Emits BENCH_serve_saturation.json for the CI
// artifact.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/serve.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace deepdive::bench {
namespace {

constexpr char kProgram[] = R"(
relation Person(sent: int, mention: int).
query relation HasSpouse(m1: int, m2: int).
evidence HasSpouseLabel(m1: int, m2: int, l: bool) for HasSpouse.
rule CAND: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
factor PRIOR: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2
  weight = 0.5 semantics = logical.
)";

struct Args {
  double seconds = 2.0;  // per phase
  size_t readers = 8;
  /// Each updater connection has one update in flight (Call blocks until
  /// applied), so saturation needs more updaters than watermark + 1.
  size_t updaters = 8;
  std::string out = "BENCH_serve_saturation.json";
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--seconds") {
      args.seconds = std::strtod(next(), nullptr);
    } else if (a == "--readers") {
      args.readers = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--updaters") {
      args.updaters = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--out") {
      args.out = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
    }
  }
  return args;
}

struct LatencyStats {
  size_t calls = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double qps = 0.0;
};

double Percentile(std::vector<double>* sorted_us, double p) {
  if (sorted_us->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_us->size() - 1) / 100.0);
  return (*sorted_us)[idx];
}

/// One reader connection hammering the query verb until `stop`; records
/// every call's latency in microseconds.
void ReaderLoop(const std::string& address, const std::atomic<bool>* stop,
                std::vector<double>* latencies_us) {
  auto client = serve::comm::Client::Dial(address);
  if (!client.ok()) {
    std::fprintf(stderr, "reader dial failed: %s\n",
                 client.status().ToString().c_str());
    return;
  }
  serve::comm::Request query;
  query.tenant = "bench";
  query.body = serve::comm::QueryRequest{"HasSpouse", "", 0.0};
  // ordering: relaxed — quit hint; the pool's Wait() is the join that
  // publishes the latency vectors back to the main thread.
  while (!stop->load(std::memory_order_relaxed)) {
    Timer call;
    auto response = client->Call(query);
    if (!response.ok() || !response->ok()) {
      std::fprintf(stderr, "query failed mid-bench\n");
      return;
    }
    latencies_us->push_back(call.Seconds() * 1e6);
  }
}

/// One updater connection streaming data inserts; sheds are counted and
/// honored (the client backs off by the server's retry hint, like a
/// well-behaved producer).
void UpdaterLoop(const std::string& address, size_t updater_id,
                 const std::atomic<bool>* stop, size_t* applied, size_t* shed) {
  auto client = serve::comm::Client::Dial(address);
  if (!client.ok()) {
    std::fprintf(stderr, "updater dial failed: %s\n",
                 client.status().ToString().c_str());
    return;
  }
  size_t seq = 0;
  // ordering: relaxed — quit hint, same join-published contract as readers.
  while (!stop->load(std::memory_order_relaxed)) {
    const size_t sentence = 1000 + updater_id * 1000000 + seq;
    serve::comm::UpdateRequest body;
    body.label = "stream#" + std::to_string(updater_id) + "." +
                 std::to_string(seq);
    body.inserts.push_back(
        {"Person", std::to_string(sentence) + "\t" +
                       std::to_string(2 * sentence) + "\n" +
                       std::to_string(sentence) + "\t" +
                       std::to_string(2 * sentence + 1) + "\n"});
    serve::comm::Request request;
    request.tenant = "bench";
    request.body = std::move(body);
    auto response = client->Call(request);
    if (!response.ok()) {
      std::fprintf(stderr, "update transport failed mid-bench\n");
      return;
    }
    if (response->code == StatusCode::kUnavailable) {
      ++*shed;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(response->retry_after_ms));
      continue;
    }
    if (!response->ok()) {
      std::fprintf(stderr, "update rejected: %s\n", response->message.c_str());
      return;
    }
    ++*applied;
    ++seq;
  }
}

LatencyStats RunReaders(const std::string& address, size_t readers,
                        double seconds, ThreadPool* fleet,
                        std::atomic<bool>* stop) {
  std::vector<std::vector<double>> latencies(readers);
  for (size_t r = 0; r < readers; ++r) {
    fleet->Submit([&address, stop, &latencies, r] {
      ReaderLoop(address, stop, &latencies[r]);
    });
  }
  Timer window;
  while (window.Seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // ordering: relaxed — quit hint; Wait() below is the synchronization point.
  stop->store(true, std::memory_order_relaxed);
  fleet->Wait();
  std::vector<double> all;
  for (const auto& per_reader : latencies) {
    all.insert(all.end(), per_reader.begin(), per_reader.end());
  }
  std::sort(all.begin(), all.end());
  LatencyStats stats;
  stats.calls = all.size();
  stats.p50_us = Percentile(&all, 50.0);
  stats.p99_us = Percentile(&all, 99.0);
  stats.qps = static_cast<double>(all.size()) / seconds;
  return stats;
}

// Small queue + tight watermark on purpose: the bench exists to measure
// what saturation does to the query plane, so make saturation reachable.
constexpr uint32_t kQueueCapacity = 8;
constexpr uint32_t kShedWatermark = 4;

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);

  serve::service::TenantRegistry registry;
  serve::handlers::Dispatcher dispatcher(&registry);

  serve::comm::CreateTenantRequest create;
  create.name = "bench";
  create.program = kProgram;
  create.config.epochs = 5;
  create.config.queue_capacity = kQueueCapacity;
  create.config.shed_watermark = kShedWatermark;
  create.config.retry_after_ms = 5;
  create.data.push_back({"Person", "1\t10\n1\t11\n"});
  create.data.push_back({"HasSpouseLabel", "10\t11\ttrue\n"});
  serve::comm::Request request;
  request.tenant = "bench";
  request.body = std::move(create);
  const serve::comm::Response created = dispatcher.Dispatch(request);
  if (!created.ok()) {
    std::fprintf(stderr, "tenant creation failed: %s\n",
                 created.message.c_str());
    return 1;
  }

  serve::srv::ServerOptions options;
  options.listen_address = "127.0.0.1:0";
  options.connection_workers = args.readers + args.updaters + 2;
  serve::srv::Server server(&dispatcher, options);
  if (const Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  const std::string address = server.address();

  // Phase 1 — idle: queries only, the lock-free pin path with no writer.
  PrintHeader("idle: query fleet only");
  ThreadPool idle_fleet(args.readers, /*inline_when_single=*/false);
  std::atomic<bool> idle_stop{false};
  const LatencyStats idle =
      RunReaders(address, args.readers, args.seconds, &idle_fleet, &idle_stop);
  std::printf("%zu readers: %zu queries, %.0f q/s, p50 %.1f us, p99 %.1f us\n",
              args.readers, idle.calls, idle.qps, idle.p50_us, idle.p99_us);

  // Phase 2 — saturated: the same query fleet racing a streaming update
  // fleet that keeps the per-tenant queue at its admission watermark.
  PrintHeader("saturated: query fleet vs streaming updates");
  ThreadPool update_fleet(args.updaters, /*inline_when_single=*/false);
  std::atomic<bool> update_stop{false};
  std::vector<size_t> applied(args.updaters, 0);
  std::vector<size_t> shed(args.updaters, 0);
  for (size_t u = 0; u < args.updaters; ++u) {
    update_fleet.Submit([&address, u, &update_stop, &applied, &shed] {
      UpdaterLoop(address, u, &update_stop, &applied[u], &shed[u]);
    });
  }
  ThreadPool saturated_fleet(args.readers, /*inline_when_single=*/false);
  std::atomic<bool> saturated_stop{false};
  const LatencyStats saturated = RunReaders(
      address, args.readers, args.seconds, &saturated_fleet, &saturated_stop);
  // ordering: relaxed — quit hint; Wait() is the synchronization point.
  update_stop.store(true, std::memory_order_relaxed);
  update_fleet.Wait();
  size_t total_applied = 0, total_shed = 0;
  for (size_t u = 0; u < args.updaters; ++u) {
    total_applied += applied[u];
    total_shed += shed[u];
  }
  const double shed_rate =
      total_applied + total_shed == 0
          ? 0.0
          : static_cast<double>(total_shed) /
                static_cast<double>(total_applied + total_shed);
  std::printf("%zu readers: %zu queries, %.0f q/s, p50 %.1f us, p99 %.1f us\n",
              args.readers, saturated.calls, saturated.qps, saturated.p50_us,
              saturated.p99_us);
  std::printf("%zu updaters: %zu applied, %zu shed (%.1f%% shed rate)\n",
              args.updaters, total_applied, total_shed, shed_rate * 100.0);

  // Hard gates, not just numbers: the tenant's own counters must agree with
  // the client-side tallies (end-to-end consistency of the status verb), the
  // epoch must equal 1 + applied updates (monotone, nothing lost), and with
  // more updaters than watermark + 1 the admission control must actually
  // have shed something. Any of these failing is a serving-stack regression.
  serve::comm::Request status;
  status.tenant = "bench";
  status.body = serve::comm::StatusRequest{};
  const serve::comm::Response stats = dispatcher.Dispatch(status);
  if (!stats.ok()) {
    std::fprintf(stderr, "status verb failed: %s\n", stats.message.c_str());
    return 1;
  }
  const auto& tenant =
      std::get<serve::comm::StatusResult>(stats.body).tenants[0];
  std::printf("server counters: %llu applied, %llu shed, epoch %llu\n",
              static_cast<unsigned long long>(tenant.updates_applied),
              static_cast<unsigned long long>(tenant.updates_shed),
              static_cast<unsigned long long>(tenant.epoch));
  if (tenant.updates_applied != total_applied ||
      tenant.updates_shed != total_shed) {
    std::fprintf(stderr,
                 "FAIL: server counters disagree with client tallies\n");
    return 1;
  }
  if (tenant.epoch != 1 + total_applied) {
    std::fprintf(stderr, "FAIL: epoch %llu != 1 + %zu applied updates\n",
                 static_cast<unsigned long long>(tenant.epoch), total_applied);
    return 1;
  }
  if (args.updaters > kShedWatermark + 1 && total_shed == 0) {
    std::fprintf(stderr, "FAIL: admission control never shed an update\n");
    return 1;
  }

  server.Stop();
  registry.StopAll();

  std::FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"serve_saturation\",\n"
               "  \"readers\": %zu,\n"
               "  \"updaters\": %zu,\n"
               "  \"seconds_per_phase\": %.2f,\n"
               "  \"idle_queries\": %zu,\n"
               "  \"idle_qps\": %.0f,\n"
               "  \"idle_p50_us\": %.1f,\n"
               "  \"idle_p99_us\": %.1f,\n"
               "  \"saturated_queries\": %zu,\n"
               "  \"saturated_qps\": %.0f,\n"
               "  \"saturated_p50_us\": %.1f,\n"
               "  \"saturated_p99_us\": %.1f,\n"
               "  \"updates_applied\": %zu,\n"
               "  \"updates_shed\": %zu,\n"
               "  \"shed_rate\": %.4f\n"
               "}\n",
               args.readers, args.updaters, args.seconds, idle.calls, idle.qps,
               idle.p50_us, idle.p99_us, saturated.calls, saturated.qps,
               saturated.p50_us, saturated.p99_us, total_applied, total_shed,
               shed_rate);
  std::fclose(out);
  std::printf("\nwrote %s\n", args.out.c_str());
  return 0;
}

}  // namespace
}  // namespace deepdive::bench

int main(int argc, char** argv) { return deepdive::bench::Run(argc, argv); }
