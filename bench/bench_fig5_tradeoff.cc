// Figure 5: the materialization-strategy tradeoff space.
//   (a) materialization + inference time vs graph size (strawman explodes
//       past ~20 variables);
//   (b) sampling-vs-variational inference time vs MH acceptance rate;
//   (c) inference time vs correlation sparsity (variational wins on sparse
//       graphs).
// Absolute numbers are machine-specific; the reproduction targets the
// *shape*: who wins where, and the crossovers.
#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "incremental/mh_sampler.h"
#include "incremental/sample_store.h"
#include "incremental/strawman.h"
#include "incremental/variational.h"
#include "inference/gibbs.h"
#include "util/timer.h"

namespace deepdive::bench {
namespace {

using factor::FactorGraph;
using factor::GraphDelta;
using factor::VarId;
using incremental::IndependentMH;
using incremental::MHOptions;
using incremental::SampleStore;
using incremental::StrawmanMaterialization;
using incremental::VariationalMaterialization;
using incremental::VariationalOptions;

constexpr size_t kMaterializationSamples = 100;  // SM
constexpr size_t kInferenceSamples = 100;        // SI

SampleStore DrawStore(const FactorGraph& g, size_t count, uint64_t seed) {
  inference::GibbsSampler sampler(&g);
  inference::GibbsOptions options;
  options.burn_in_sweeps = 20;
  options.seed = seed;
  SampleStore store;
  store.AddAll(sampler.DrawSamples(count, 1, options));
  return store;
}

/// A small structural update: one new pairwise factor per 100 variables.
GraphDelta SmallDelta(FactorGraph* g, double weight) {
  GraphDelta delta;
  Rng rng(4242);
  const size_t n = g->NumVariables();
  const size_t count = std::max<size_t>(1, n / 100);
  for (size_t i = 0; i < count; ++i) {
    const auto a = static_cast<VarId>(rng.UniformInt(n));
    const auto b = static_cast<VarId>(rng.UniformInt(n));
    if (a == b) continue;
    delta.new_groups.push_back(
        g->AddSimpleFactor(a, {{b, false}}, g->AddWeight(weight, false)));
  }
  return delta;
}

double SamplingInference(const FactorGraph& g, const GraphDelta& delta,
                         SampleStore* store) {
  Timer timer;
  IndependentMH mh(&g, &delta);
  MHOptions options;
  options.target_steps = store->size();
  options.target_accepted = kInferenceSamples;
  auto result = mh.Run(store, options);
  (void)result;
  return timer.Seconds();
}

double VariationalInference(const FactorGraph& original,
                            const VariationalMaterialization& vmat,
                            const GraphDelta& delta) {
  Timer timer;
  FactorGraph inf = incremental::BuildVariationalInferenceGraph(
      original, vmat.approx_graph(), delta);
  inference::GibbsSampler sampler(&inf);
  inference::GibbsOptions options;
  options.burn_in_sweeps = 5;
  options.sample_sweeps = kInferenceSamples;
  sampler.EstimateMarginals(options);
  return timer.Seconds();
}

void PartA() {
  PrintHeader("Figure 5(a): size of the factor graph");
  std::printf("%8s | %12s %12s %12s | %12s %12s %12s\n", "n", "mat.straw", "mat.samp",
              "mat.var", "inf.straw", "inf.samp", "inf.var");
  for (size_t n : {2u, 10u, 17u, 100u, 1000u, 10000u}) {
    FactorGraph g = PairwiseGraph(n, 1.0, 7 + n);

    double mat_straw = -1, inf_straw = -1;
    StatusOr<StrawmanMaterialization> strawman =
        Status::FailedPrecondition("not materialized");
    if (n <= 17) {
      Timer t;
      strawman = StrawmanMaterialization::Materialize(g, 20);
      mat_straw = t.Seconds();
    }

    Timer t_samp;
    SampleStore store = DrawStore(g, kMaterializationSamples, 11);
    const double mat_samp = t_samp.Seconds();

    Timer t_var;
    VariationalOptions vopts;
    vopts.num_samples = kMaterializationSamples;
    vopts.gibbs_burn_in = 20;
    vopts.fit_epochs = 30;
    vopts.lambda = 0.1;
    auto vmat = VariationalMaterialization::Materialize(g, vopts);
    const double mat_var = t_var.Seconds();

    GraphDelta delta = SmallDelta(&g, 0.3);

    if (n <= 17 && strawman.ok()) {
      Timer t;
      (void)strawman->InferUpdated(g, delta);
      inf_straw = t.Seconds();
    }
    const double inf_samp = SamplingInference(g, delta, &store);
    const double inf_var =
        vmat.ok() ? VariationalInference(g, *vmat, delta) : -1;

    auto cell = [](double v) {
      return v < 0 ? std::string("    infeasible") : StrFormat("%12.5f", v);
    };
    std::printf("%8zu | %s %s %s | %s %s %s\n", n, cell(mat_straw).c_str(),
                cell(mat_samp).c_str(), cell(mat_var).c_str(), cell(inf_straw).c_str(),
                cell(inf_samp).c_str(), cell(inf_var).c_str());
  }
}

void PartB() {
  PrintHeader("Figure 5(b): amount of change (acceptance rate)");
  std::printf("%12s | %14s %14s | %s\n", "target-rate", "inf.sampling", "inf.variational",
              "measured acceptance");
  const size_t n = 1000;
  // Delta weight magnitude controls how far Pr(D) drifts from Pr(0):
  // calibrated to span acceptance ~1.0 down to ~0.01.
  const struct {
    double target;
    double weight;
    size_t factors;
  } kPoints[] = {{1.0, 0.0, 1}, {0.5, 0.35, 8}, {0.1, 0.6, 40}, {0.01, 1.2, 150}};

  for (const auto& point : kPoints) {
    FactorGraph g = PairwiseGraph(n, 1.0, 31);
    SampleStore store = DrawStore(g, 40000, 13);

    GraphDelta delta;
    Rng rng(17);
    for (size_t i = 0; i < point.factors && point.weight > 0; ++i) {
      const auto a = static_cast<VarId>(rng.UniformInt(n));
      const auto b = static_cast<VarId>(rng.UniformInt(n));
      if (a == b) continue;
      delta.new_groups.push_back(
          g.AddSimpleFactor(a, {{b, false}}, g.AddWeight(point.weight, false)));
    }

    Timer t_s;
    IndependentMH mh(&g, &delta);
    MHOptions options;
    options.target_steps = store.size();
    options.target_accepted = kInferenceSamples;
    auto result = mh.Run(&store, options);
    const double inf_samp = t_s.Seconds();

    VariationalOptions vopts;
    vopts.num_samples = kMaterializationSamples;
    vopts.gibbs_burn_in = 20;
    vopts.fit_epochs = 30;
    vopts.lambda = 0.1;
    auto vmat = VariationalMaterialization::Materialize(g, vopts);
    const double inf_var = vmat.ok() ? VariationalInference(g, *vmat, delta) : -1;

    std::printf("%12g | %14.5f %14.5f | %.3f\n", point.target, inf_samp, inf_var,
                result.ok() ? result->acceptance_rate : -1.0);
  }
}

void PartC() {
  PrintHeader("Figure 5(c): sparsity of correlations");
  std::printf("%8s | %14s %14s | %s\n", "sparsity", "inf.sampling", "inf.variational",
              "approx edges");
  const size_t n = 1000;
  for (double sparsity : {0.1, 0.2, 0.3, 0.5, 1.0}) {
    // Dense base graph (~4 factors/variable) so the edge count, not the
    // unary sweep floor, dominates inference cost — the paper's setting.
    FactorGraph g = PairwiseGraph(n, sparsity, 53, /*weight_scale=*/1.2,
                                  /*chords_per_var=*/3.0);
    SampleStore store = DrawStore(g, 40000, 19);

    // A real development-iteration update (many new factors): acceptance is
    // low, so the sampling approach pays SI/rho proposals while the
    // variational cost tracks the approximate graph's density.
    GraphDelta delta;
    Rng rng(61);
    for (size_t i = 0; i < 60; ++i) {
      const auto a = static_cast<VarId>(rng.UniformInt(n));
      const auto b = static_cast<VarId>(rng.UniformInt(n));
      if (a == b) continue;
      delta.new_groups.push_back(
          g.AddSimpleFactor(a, {{b, false}}, g.AddWeight(0.8, false)));
    }

    const double inf_samp = SamplingInference(g, delta, &store);

    VariationalOptions vopts;
    vopts.num_samples = 300;
    vopts.gibbs_burn_in = 20;
    vopts.fit_epochs = 30;
    vopts.lambda = 0.25;
    auto vmat = VariationalMaterialization::Materialize(g, vopts);
    const double inf_var = vmat.ok() ? VariationalInference(g, *vmat, delta) : -1;

    std::printf("%8.1f | %14.5f %14.5f | %zu\n", sparsity, inf_samp, inf_var,
                vmat.ok() ? vmat->NumEdges() : 0);
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  deepdive::bench::PartA();
  deepdive::bench::PartB();
  deepdive::bench::PartC();
  return 0;
}
