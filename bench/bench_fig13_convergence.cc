// Figure 13 (Appendix A): Gibbs convergence of the voting program under the
// three semantics as |U| + |D| grows. Expected shape: Logical and Ratio
// converge in near-linear sweeps (O(n log n) total variable updates);
// Linear degrades dramatically (exponential worst case, Theorem A.8/A.9).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "inference/gibbs.h"
#include "inference/world.h"

namespace deepdive::bench {
namespace {

using factor::FactorGraph;
using factor::Semantics;
using factor::VarId;

FactorGraph VariableVotingGraph(size_t up, size_t down, Semantics semantics) {
  FactorGraph g;
  const VarId q = g.AddVariable();
  const VarId first_up = g.AddVariables(up);
  const VarId first_down = g.AddVariables(down);
  const auto w_up = g.AddWeight(1.0, false, "up");
  const auto w_down = g.AddWeight(-1.0, false, "down");
  const auto g_up = g.AddGroup(0, q, w_up, semantics);
  for (size_t i = 0; i < up; ++i) {
    g.AddClause(g_up, {{static_cast<VarId>(first_up + i), false}});
  }
  const auto g_down = g.AddGroup(1, q, w_down, semantics);
  for (size_t i = 0; i < down; ++i) {
    g.AddClause(g_down, {{static_cast<VarId>(first_down + i), false}});
  }
  return g;
}

/// Sweeps until q's running marginal is within 3% of 0.5 (the symmetric
/// exact answer), from an adversarial all-false start. Returns sweeps (cap
/// = not converged).
size_t SweepsToConverge(FactorGraph* g, size_t cap, uint64_t seed) {
  inference::GibbsSampler sampler(g);
  inference::World world(g);
  Rng rng(seed);
  world.InitValues(&rng, /*random_init=*/false);
  size_t q_true = 0;
  for (size_t sweep = 1; sweep <= cap; ++sweep) {
    sampler.Sweep(&world, &rng);
    q_true += world.value(0) ? 1 : 0;
    const double est = static_cast<double>(q_true) / static_cast<double>(sweep);
    if (sweep >= 30 && std::abs(est - 0.5) < 0.03) return sweep;
  }
  return cap;
}

void Run() {
  PrintHeader("Figure 13: sweeps to converge, voting program, |U| = |D|");
  const size_t kCap = 20000;
  std::printf("%8s | %10s %10s %10s   (cap = %zu)\n", "|U|+|D|", "logical", "ratio",
              "linear", kCap);
  for (size_t total : {10u, 30u, 100u, 300u, 1000u}) {
    const size_t half = total / 2;
    size_t results[3];
    const Semantics order[3] = {Semantics::kLogical, Semantics::kRatio,
                                Semantics::kLinear};
    for (int s = 0; s < 3; ++s) {
      size_t sum = 0;
      for (uint64_t seed : {1001u, 1002u, 1003u}) {
        FactorGraph g = VariableVotingGraph(half, half, order[s]);
        sum += SweepsToConverge(&g, kCap, seed);
      }
      results[s] = sum / 3;
    }
    std::printf("%8zu | %10zu %10zu %10zu\n", total, results[0], results[1],
                results[2]);
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  deepdive::bench::Run();
  return 0;
}
