// Update latency with and without background rematerialization (the paper's
// Section 3.3 "materialize during idle time" story). A drifting update
// stream drains the sample store; the blocking configuration pays the full
// rebuild inline on the update that triggers it, while the async
// configuration schedules the rebuild on the background worker and keeps
// serving from the previous snapshot — per-update latency stays flat.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "incremental/engine.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/thread_role.h"

namespace deepdive::bench {
namespace {

using factor::FactorGraph;
using factor::GraphDelta;
using factor::VarId;
using incremental::EngineOptions;
using incremental::IncrementalEngine;
using incremental::MaterializationOptions;

constexpr size_t kVars = 400;
constexpr size_t kUpdates = 24;
constexpr size_t kStoreSamples = 600;

MaterializationOptions BenchMaterialization() {
  MaterializationOptions mopts;
  mopts.num_samples = kStoreSamples;
  mopts.gibbs_burn_in = 150;
  mopts.variational.num_samples = 150;
  mopts.variational.fit_epochs = 80;
  return mopts;
}

EngineOptions BenchEngine() {
  EngineOptions eopts;
  eopts.mh_target_steps = 120;
  eopts.gibbs.burn_in_sweeps = 20;
  eopts.gibbs.sample_sweeps = 200;
  eopts.rerun_gibbs.burn_in_sweeps = 50;
  eopts.rerun_gibbs.sample_sweeps = 400;
  return eopts;
}

GraphDelta DriftUpdate(FactorGraph* g, size_t u) {
  // New learnable feature factors: the sampling path serves them, acceptance
  // decays with drift, and the store drains a bit on every update.
  GraphDelta delta;
  Rng rng(1000 + u);
  for (int i = 0; i < 4; ++i) {
    const auto head = static_cast<VarId>(rng.UniformInt(kVars));
    auto body = static_cast<VarId>(rng.UniformInt(kVars));
    if (body == head) body = (body + 1) % kVars;
    delta.new_groups.push_back(g->AddSimpleFactor(
        head, {{body, false}},
        g->AddWeight(rng.Uniform(-0.6, 0.6), /*learnable=*/true)));
  }
  return delta;
}

struct RunResult {
  std::vector<double> update_ms;
  size_t remats = 0;
};

/// Drives the update stream. `async` toggles the tentpole: when false, an
/// exhausted store forces a blocking Materialize on the next update (the
/// historical behavior); when true, the engine's remat trigger rebuilds in
/// the background while updates keep flowing.
RunResult RunStream(bool async) REQUIRES(serving_thread) {
  FactorGraph g = PairwiseGraph(kVars, 0.8, 7);
  IncrementalEngine engine(&g);
  MaterializationOptions mopts = BenchMaterialization();
  mopts.async = async;
  mopts.remat_on_exhaustion = async;
  DD_CHECK_OK(engine.Materialize(mopts));

  RunResult result;
  const uint64_t start_generation = engine.snapshot_generation();
  for (size_t u = 0; u < kUpdates; ++u) {
    const GraphDelta delta = DriftUpdate(&g, u);
    Timer timer;
    if (!async && engine.SamplesRemaining() == 0) {
      // Blocking remat: the caller eats the whole rebuild latency.
      DD_CHECK_OK(engine.Materialize(mopts));
      ++result.remats;
    }
    auto outcome = engine.ApplyDelta(delta, BenchEngine());
    DD_CHECK_OK(outcome.status());
    result.update_ms.push_back(timer.Seconds() * 1e3);
  }
  DD_CHECK_OK(engine.WaitForMaterialization());
  if (async) {
    result.remats = engine.snapshot_generation() - start_generation;
  }
  return result;
}

void Summarize(const char* label, const RunResult& result) {
  std::vector<double> sorted = result.update_ms;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (double ms : sorted) total += ms;
  std::printf("%-22s avg %8.2f ms   p50 %8.2f ms   max %8.2f ms   remats %zu\n",
              label, total / static_cast<double>(sorted.size()),
              sorted[sorted.size() / 2], sorted.back(), result.remats);
}

void Run() REQUIRES(serving_thread) {
  PrintHeader("Update latency: blocking vs background rematerialization");
  std::printf("%zu-variable graph, %zu drifting updates, %zu-sample store\n\n",
              kVars, kUpdates, kStoreSamples);
  const RunResult blocking = RunStream(/*async=*/false);
  const RunResult background = RunStream(/*async=*/true);
  Summarize("blocking remat", blocking);
  Summarize("background remat", background);
  std::printf(
      "\nmax-latency ratio (blocking / background): %.1fx\n",
      *std::max_element(blocking.update_ms.begin(), blocking.update_ms.end()) /
          *std::max_element(background.update_ms.begin(),
                            background.update_ms.end()));
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  // Trusted root: the bench main thread is the serving thread.
  deepdive::serving_thread.AssertHeld();
  deepdive::bench::Run();
  return 0;
}
