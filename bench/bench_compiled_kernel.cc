// Compiled-kernel benchmark: the flat CSR CompiledGraph sweep vs. the mutable
// pointer-rich FactorGraph sweep (ns/var), plus the cold-start story — how
// fast a fresh process gets to a sampleable graph from an mmap'd binary
// snapshot vs. re-grounding the graph from scratch. Emits
// BENCH_compiled_kernel.json for the CI artifact.
//
// Both paths run the identical sweep schedule from identical seeds, so the
// flip counts printed per path double as a parity check (they must match —
// the compiled kernel is bit-identical by contract).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "factor/compiled_graph.h"
#include "factor/graph_io.h"
#include "inference/gibbs.h"
#include "util/timer.h"

namespace deepdive::bench {
namespace {

struct Args {
  size_t vars = 200000;
  size_t sweeps = 20;
  std::string out = "BENCH_compiled_kernel.json";
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--vars") {
      args.vars = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--sweeps") {
      args.sweeps = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--out") {
      args.out = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
    }
  }
  return args;
}

template <typename GraphT>
size_t TimedSweeps(const GraphT& graph, size_t sweeps, uint64_t seed,
                   double* seconds) {
  inference::BasicGibbsSampler<GraphT> sampler(&graph);
  typename inference::BasicGibbsSampler<GraphT>::WorldType world(&graph);
  Rng init_rng(seed);
  world.InitValues(&init_rng, /*random_init=*/true);
  Rng rng(Rng::MixSeed(seed, 1));
  size_t flips = 0;
  Timer timer;
  for (size_t s = 0; s < sweeps; ++s) flips += sampler.Sweep(&world, &rng);
  *seconds = timer.Seconds();
  return flips;
}

int Run(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  constexpr uint64_t kGraphSeed = 7;
  constexpr uint64_t kChainSeed = 21;

  // Cold-start baseline: build ("re-ground") the workload graph from scratch.
  PrintHeader("cold start: re-ground vs. mmap snapshot");
  Timer reground_timer;
  factor::FactorGraph g = PairwiseGraph(args.vars, 1.0, kGraphSeed);
  const double reground_s = reground_timer.Seconds();
  std::printf("reground          %8.1f ms  (%zu vars, %zu clauses)\n",
              reground_s * 1e3, g.NumVariables(), g.NumClauses());

  Timer compile_timer;
  const factor::CompiledGraph compiled = factor::CompiledGraph::Compile(g);
  const double compile_s = compile_timer.Seconds();
  std::printf("compile           %8.1f ms  (%zu byte image)\n", compile_s * 1e3,
              compiled.image_bytes());

  const std::string snapshot_path = "bench_compiled_kernel_snapshot.bin";
  Timer save_timer;
  const auto save_status = factor::SaveCompiledGraph(compiled, snapshot_path);
  const double save_s = save_timer.Seconds();
  if (!save_status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", save_status.ToString().c_str());
    return 1;
  }
  std::printf("save              %8.1f ms\n", save_s * 1e3);

  Timer load_timer;
  auto loaded = factor::LoadCompiledGraph(snapshot_path);
  const double load_s = load_timer.Seconds();
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const double cold_start_speedup = (reground_s + compile_s) / load_s;
  std::printf("mmap load         %8.1f ms  (%.1fx faster than re-ground+compile)\n",
              load_s * 1e3, cold_start_speedup);

  // Sweep kernel: identical schedule, identical seeds, flip-count parity.
  PrintHeader("sweep kernel: mutable vs. compiled CSR");
  double mutable_s = 0.0, compiled_s = 0.0;
  const size_t mutable_flips = TimedSweeps(g, args.sweeps, kChainSeed, &mutable_s);
  const size_t compiled_flips =
      TimedSweeps(*loaded, args.sweeps, kChainSeed, &compiled_s);
  const double denom = static_cast<double>(args.sweeps * args.vars);
  const double mutable_ns = mutable_s * 1e9 / denom;
  const double compiled_ns = compiled_s * 1e9 / denom;
  std::printf("mutable sweep     %8.1f ns/var  (%zu flips)\n", mutable_ns,
              mutable_flips);
  std::printf("compiled sweep    %8.1f ns/var  (%zu flips)\n", compiled_ns,
              compiled_flips);
  std::printf("sweep speedup     %8.2fx\n", mutable_ns / compiled_ns);
  if (mutable_flips != compiled_flips) {
    std::fprintf(stderr, "PARITY VIOLATION: flip counts differ (%zu vs %zu)\n",
                 mutable_flips, compiled_flips);
    return 1;
  }

  std::FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"compiled_kernel\",\n"
               "  \"vars\": %zu,\n"
               "  \"clauses\": %zu,\n"
               "  \"sweeps\": %zu,\n"
               "  \"mutable_sweep_ns_per_var\": %.2f,\n"
               "  \"compiled_sweep_ns_per_var\": %.2f,\n"
               "  \"sweep_speedup\": %.3f,\n"
               "  \"flip_parity\": true,\n"
               "  \"reground_ms\": %.3f,\n"
               "  \"compile_ms\": %.3f,\n"
               "  \"save_ms\": %.3f,\n"
               "  \"snapshot_bytes\": %zu,\n"
               "  \"mmap_load_ms\": %.3f,\n"
               "  \"cold_start_speedup\": %.2f\n"
               "}\n",
               args.vars, g.NumClauses(), args.sweeps, mutable_ns, compiled_ns,
               mutable_ns / compiled_ns, reground_s * 1e3, compile_s * 1e3,
               save_s * 1e3, compiled.image_bytes(), load_s * 1e3,
               cold_start_speedup);
  std::fclose(out);
  std::printf("\nwrote %s\n", args.out.c_str());
  std::remove(snapshot_path.c_str());
  return 0;
}

}  // namespace
}  // namespace deepdive::bench

int main(int argc, char** argv) { return deepdive::bench::Run(argc, argv); }
