// Figure 11: lesion study of the materialization tradeoff space on News.
// Configurations: the full optimizer, sampling disabled, variational
// disabled, and NoWorkloadInfo (always try sampling first, fall back when
// samples run out — no per-update classification). Expected shape: each
// lesion is slower than the full system on some rule class; NoWorkloadInfo
// trails the optimizer.
#include <cstdio>

#include "bench_common.h"
#include "kbc/pipeline.h"
#include "util/thread_role.h"

namespace deepdive::bench {
namespace {

struct Config {
  const char* name;
  bool sampling_enabled;
  bool variational_enabled;
  bool force_sampling_first;  // NoWorkloadInfo
};

void Run() REQUIRES(serving_thread) {
  PrintHeader("Figure 11: lesion study on News (inference seconds per rule)");
  const Config kConfigs[] = {
      {"Full", true, true, false},
      {"NoSampling", false, true, false},
      {"NoVariational", true, false, false},
      {"NoWorkloadInfo", true, true, true},
  };

  kbc::SystemProfile profile = kbc::ProfileFor(kbc::SystemKind::kNews);
  profile.num_documents = 200;

  std::printf("%-15s", "Config");
  for (const std::string& rule : kbc::KbcPipeline::UpdateSequence()) {
    std::printf(" %9s", rule.c_str());
  }
  std::printf(" %10s\n", "total");

  for (const Config& config : kConfigs) {
    kbc::PipelineOptions options;
    options.config = core::FastTestConfig();
    options.config.mode = core::ExecutionMode::kIncremental;
    options.config.engine.optimizer.sampling_enabled = config.sampling_enabled;
    options.config.engine.optimizer.variational_enabled = config.variational_enabled;
    if (config.force_sampling_first) {
      options.config.engine.forced_strategy = incremental::Strategy::kSampling;
    }
    options.seed = 15;

    auto pipeline = kbc::KbcPipeline::Build(profile, options);
    if (!pipeline.ok() || !(*pipeline)->Initialize().ok()) {
      std::printf("%-15s build failed\n", config.name);
      continue;
    }
    std::printf("%-15s", config.name);
    double total = 0.0;
    for (const std::string& rule : kbc::KbcPipeline::UpdateSequence()) {
      auto report = (*pipeline)->ApplyUpdate(rule);
      if (!report.ok()) {
        std::printf(" %9s", "fail");
        continue;
      }
      const double secs = report->learning_seconds + report->inference_seconds;
      total += secs;
      std::printf(" %9.3f", secs);
    }
    std::printf(" %10.3f\n", total);
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  // Trusted root: the bench main thread is the serving thread.
  deepdive::serving_thread.AssertHeld();
  deepdive::bench::Run();
  return 0;
}
