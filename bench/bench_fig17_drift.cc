// Figure 17 (Appendix B.4): impact of concept drift on incremental learning.
// A chronological spam stream drifts mid-prefix; Rerun trains from scratch on
// 30% of labels, Incremental warmstarts from a model trained on the first
// 10%. Expected shape: both converge to the same loss; Incremental starts
// lower and converges earlier, though drift shrinks its advantage.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "inference/learner.h"
#include "kbc/drift.h"
#include "util/timer.h"

namespace deepdive::bench {
namespace {

void RunOnce(const char* title, double drift_point) {
  std::printf("\n-- %s --\n", title);
  kbc::DriftOptions dopts;
  dopts.num_docs = 1000;
  dopts.vocab_size = 120;
  dopts.drifting_fraction = 0.25;
  dopts.drift_point = drift_point;
  dopts.seed = 91;
  const auto docs = kbc::GenerateDriftStream(dopts);

  // Incremental: model trained on 10%, labels extended to 30%, warmstart.
  kbc::DriftModel inc = kbc::BuildDriftModel(docs, 0.1);
  {
    inference::LearnerOptions lopts;
    lopts.epochs = 10;
    lopts.warmstart = false;
    lopts.learning_rate = 0.015;
    lopts.decay = 0.99;
    lopts.l2 = 0.05;  // keep stage-1 weights moderate (avoid memorizing the
                      // small prefix; saturated weights stall CD updates)
    inference::Learner(&inc.graph).Learn(lopts);
  }
  kbc::ExtendTraining(&inc, 0.3);

  // Rerun: cold model on 30%.
  kbc::DriftModel rerun = kbc::BuildDriftModel(docs, 0.3);

  std::printf("%6s | %12s | %12s\n", "epoch", "Incremental", "Rerun");
  inference::Learner inc_learner(&inc.graph);
  inference::Learner rerun_learner(&rerun.graph);
  std::printf("%6d | %12.4f | %12.4f\n", 0, kbc::TestLoss(inc), kbc::TestLoss(rerun));
  for (int epoch = 1; epoch <= 50; ++epoch) {
    inference::LearnerOptions lopts;
    lopts.epochs = 1;
    lopts.warmstart = true;
    lopts.learning_rate = 0.006 * std::pow(0.99, epoch - 1);
    lopts.l2 = 0.01;
    lopts.seed = 41 + epoch;
    inc_learner.Learn(lopts);
    rerun_learner.Learn(lopts);
    if (epoch <= 5 || epoch % 10 == 0) {
      std::printf("%6d | %12.4f | %12.4f\n", epoch, kbc::TestLoss(inc),
                  kbc::TestLoss(rerun));
    }
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  deepdive::bench::PrintHeader("Figure 17: concept drift");
  deepdive::bench::RunOnce("no drift (control)", 2.0);
  deepdive::bench::RunOnce("drift at 20% of the stream", 0.2);
  return 0;
}
