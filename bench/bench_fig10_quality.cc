// Figure 10: (a) quality (F1) against cumulative execution time for Rerun vs
// Incremental on News — same quality trajectory, reached much faster; and
// (b) quality of the three semantics (Linear / Logical / Ratio) across the
// five systems — Ratio >= Logical >= Linear, with system ordering
// Paleontology > Adversarial > Pharma > Genomics > News.
#include <cstdio>

#include "bench_common.h"
#include "kbc/snapshots.h"
#include "util/thread_role.h"

namespace deepdive::bench {
namespace {

void PartA() REQUIRES(serving_thread) {
  PrintHeader("Figure 10(a): News quality over cumulative time");
  kbc::SystemProfile profile = kbc::ProfileFor(kbc::SystemKind::kNews);
  profile.num_documents = 200;
  kbc::PipelineOptions options;
  options.config = core::FastTestConfig();
  options.seed = 7;
  auto result = kbc::RunSnapshotComparison(profile, options);
  if (!result.ok()) {
    std::printf("failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%-5s | %-21s | %-21s\n", "Rule", "Rerun  (cum s, F1)",
              "Incremental (cum s, F1)");
  for (const auto& row : result->rows) {
    std::printf("%-5s | %10.3f  %8.3f | %10.3f  %8.3f\n", row.rule.c_str(),
                row.rerun_cumulative, row.rerun_f1, row.incremental_cumulative,
                row.incremental_f1);
  }
  const double speedup = result->incremental_total_seconds > 0
                             ? result->rerun_total_seconds /
                                   result->incremental_total_seconds
                             : 0;
  std::printf("total: Rerun %.3f s vs Incremental %.3f s  (%.1fx to same quality)\n",
              result->rerun_total_seconds, result->incremental_total_seconds, speedup);
}

void PartB() REQUIRES(serving_thread) {
  PrintHeader("Figure 10(b): F1 of different semantics across systems");
  std::printf("%-10s", "");
  for (const auto& profile : kbc::AllProfiles()) std::printf(" %12s", profile.name.c_str());
  std::printf("\n");
  for (dsl::Semantics semantics :
       {dsl::Semantics::kLinear, dsl::Semantics::kLogical, dsl::Semantics::kRatio}) {
    std::printf("%-10s", dsl::SemanticsName(semantics));
    for (const auto& profile : kbc::AllProfiles()) {
      kbc::SystemProfile scaled = profile;
      scaled.num_documents = std::min<size_t>(profile.num_documents, 200);
      kbc::PipelineOptions options;
      options.config = core::FastTestConfig();
      options.config.mode = core::ExecutionMode::kRerun;
      options.semantics = semantics;
      options.seed = 9;
      auto pipeline = kbc::KbcPipeline::Build(scaled, options);
      if (!pipeline.ok() || !(*pipeline)->Initialize().ok()) {
        std::printf(" %12s", "fail");
        continue;
      }
      bool ok = true;
      for (const std::string& rule : kbc::KbcPipeline::UpdateSequence()) {
        ok = ok && (*pipeline)->ApplyUpdate(rule).ok();
      }
      // Entity-level (fact) F1: the layer where g(n) aggregation matters.
      std::printf(" %12.3f", ok ? (*pipeline)->EvaluateFacts(0.5).f1 : -1.0);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  // Trusted root: the bench main thread is the serving thread.
  deepdive::serving_thread.AssertHeld();
  deepdive::bench::PartA();
  deepdive::bench::PartB();
  return 0;
}
