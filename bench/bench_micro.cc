// Micro-benchmarks of the performance-critical primitives (google-benchmark):
// Gibbs sweeps, conditional evaluation, table operations, delta evaluation,
// and sample-store costs. These guard the constants behind every figure.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dsl/program.h"
#include "engine/rule_evaluator.h"
#include "factor/graph_delta.h"
#include "incremental/sample_store.h"
#include "inference/gibbs.h"
#include "inference/parallel_gibbs.h"
#include "inference/world.h"
#include "storage/table.h"
#include "util/string_util.h"

namespace deepdive::bench {
namespace {

void BM_GibbsSweep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  factor::FactorGraph g = PairwiseGraph(n, 1.0, 7);
  inference::GibbsSampler sampler(&g);
  inference::World world(&g);
  Rng rng(3);
  world.InitValues(&rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sweep(&world, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GibbsSweep)->Arg(100)->Arg(1000)->Arg(10000);

// Hogwild sweep throughput at a given thread count — the speedup story of
// the parallel inference subsystem. Compare items/sec against BM_GibbsSweep
// at the same variable count (the acceptance target is >= 3x at 8 threads).
void BM_ParallelGibbsSweep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  factor::FactorGraph g = PairwiseGraph(n, 1.0, 7);
  inference::ParallelGibbsSampler sampler(&g, threads);
  inference::AtomicWorld world(&g);
  Rng init_rng(3);
  world.InitValues(&init_rng, true);
  std::vector<Rng> rngs = sampler.MakeRngStreams(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sweep(&world, &rngs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelGibbsSweep)
    ->ArgsProduct({{10000, 100000}, {1, 2, 4, 8}})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ConditionalLogOdds(benchmark::State& state) {
  factor::FactorGraph g = PairwiseGraph(1000, 1.0, 11);
  inference::GibbsSampler sampler(&g);
  inference::World world(&g);
  inference::GibbsScratch scratch;  // reused, as in the samplers' hot loops
  Rng rng(5);
  world.InitValues(&rng, true);
  factor::VarId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.ConditionalLogOdds(world, v, &scratch));
    v = (v + 1) % 1000;
  }
}
BENCHMARK(BM_ConditionalLogOdds);

void BM_TableInsert(benchmark::State& state) {
  int64_t i = 0;
  Schema schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  Table table("T", schema);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Insert({Value(i), Value(i * 7)}));
    ++i;
  }
}
BENCHMARK(BM_TableInsert);

void BM_TableLookup(benchmark::State& state) {
  Schema schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  Table table("T", schema);
  for (int64_t i = 0; i < 100000; ++i) {
    (void)table.Insert({Value(i % 1000), Value(i)});
  }
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(0, Value(key)));
    key = (key + 1) % 1000;
  }
}
BENCHMARK(BM_TableLookup);

void BM_RuleJoin(benchmark::State& state) {
  auto program = dsl::CompileProgram(R"(
    relation P(s: int, m: int).
    relation H(a: int, b: int).
    rule H(a, b) :- P(s, a), P(s, b), a != b.
  )");
  Database db;
  (void)program->InstantiateSchema(&db);
  Table* p = db.GetTable("P");
  for (int64_t s = 0; s < 2000; ++s) {
    (void)p->Insert({Value(s), Value(s * 2)});
    (void)p->Insert({Value(s), Value(s * 2 + 1)});
  }
  auto body = engine::CompiledRuleBody::Compile(
      *program, db, program->deductive_rules()[0].body,
      program->deductive_rules()[0].conditions);
  for (auto _ : state) {
    size_t count = 0;
    body->EvaluateFull([&](const std::vector<Value>&, int64_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_RuleJoin);

void BM_SampleStoreRoundTrip(benchmark::State& state) {
  incremental::SampleStore store;
  for (int i = 0; i < 100; ++i) store.Add(BitVector(10000, i % 2 == 0));
  for (auto _ : state) {
    store.ResetCursor();
    size_t bits = 0;
    while (const BitVector* s = store.NextProposal()) bits += s->PopCount();
    benchmark::DoNotOptimize(bits);
  }
}
BENCHMARK(BM_SampleStoreRoundTrip);

void BM_DeltaLogRatio(benchmark::State& state) {
  factor::FactorGraph g = PairwiseGraph(10000, 1.0, 13);
  factor::GraphDelta delta;
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    const auto a = static_cast<factor::VarId>(rng.UniformInt(10000));
    const auto b = static_cast<factor::VarId>(rng.UniformInt(10000));
    if (a == b) continue;
    delta.new_groups.push_back(
        g.AddSimpleFactor(a, {{b, false}}, g.AddWeight(0.5, false)));
  }
  std::vector<uint8_t> values(g.NumVariables(), 0);
  for (auto& v : values) v = rng.Bernoulli(0.5);
  auto value_of = [&](factor::VarId v) { return values[v] != 0; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(factor::DeltaLogDensityRatio(g, delta, value_of));
  }
}
BENCHMARK(BM_DeltaLogRatio);

}  // namespace
}  // namespace deepdive::bench

BENCHMARK_MAIN();
