// Figure 15 (Appendix B.2): number of samples the sampling materialization
// collects within a fixed wall-clock budget, per KBC system. The paper used
// an 8-hour overnight budget on a 48-core machine; this reproduction scales
// the budget to ~2 seconds per system on one core — the comparison target is
// the relative ordering (smaller/sparser graphs materialize more samples).
#include <cstdio>

#include "bench_common.h"
#include "incremental/engine.h"
#include "kbc/pipeline.h"
#include "util/thread_role.h"

namespace deepdive::bench {
namespace {

void Run() REQUIRES(serving_thread) {
  PrintHeader("Figure 15: samples materialized within a fixed budget");
  constexpr double kBudgetSeconds = 2.0;
  std::printf("(budget = %.1f s per system)\n", kBudgetSeconds);
  std::printf("%-14s | %10s %10s | %12s\n", "System", "#vars", "#factors",
              "#samples");
  for (const auto& profile : kbc::AllProfiles()) {
    kbc::SystemProfile scaled = profile;
    scaled.num_documents = std::min<size_t>(profile.num_documents, 250);
    kbc::PipelineOptions options;
    options.config = core::FastTestConfig();
    options.config.mode = core::ExecutionMode::kRerun;  // engine made below
    options.seed = 23;
    auto pipeline = kbc::KbcPipeline::Build(scaled, options);
    if (!pipeline.ok() || !(*pipeline)->Initialize().ok()) {
      std::printf("%-14s | build failed\n", profile.name.c_str());
      continue;
    }
    for (const std::string& rule : kbc::KbcPipeline::UpdateSequence()) {
      (void)(*pipeline)->ApplyUpdate(rule);
    }
    auto& dd = (*pipeline)->deepdive();
    incremental::IncrementalEngine engine(dd.mutable_graph());
    incremental::MaterializationOptions mopts;
    mopts.num_samples = 1000000000;  // budget-bound
    mopts.time_budget_seconds = kBudgetSeconds;
    mopts.gibbs_burn_in = 5;
    mopts.variational.num_samples = 10;  // keep the bench about sampling
    mopts.variational.fit_epochs = 5;
    if (!engine.Materialize(mopts).ok()) continue;
    std::printf("%-14s | %10zu %10zu | %12zu\n", profile.name.c_str(),
                dd.ground().graph.NumVariables(), dd.ground().graph.NumActiveClauses(),
                engine.materialization_stats().samples_collected);
  }
}

}  // namespace
}  // namespace deepdive::bench

int main() {
  // Trusted root: the bench main thread is the serving thread.
  deepdive::serving_thread.AssertHeld();
  deepdive::bench::Run();
  return 0;
}
